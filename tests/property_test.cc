// Property-based tests: structural invariants of Dash tables checked after
// randomized workloads, swept across the full option space (fingerprints,
// overflow metadata, balanced insert, displacement, stash count,
// concurrency mode).

#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "dash/dash_eh.h"
#include "dash/dash_lh.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash {
namespace {

struct PropertyCase {
  bool fingerprints;
  bool overflow_metadata;
  bool balanced;
  bool displacement;
  uint32_t stash;
  ConcurrencyMode mode;

  std::string Name() const {
    std::ostringstream os;
    os << (fingerprints ? "fp" : "nofp") << "_"
       << (overflow_metadata ? "md" : "nomd") << "_"
       << (balanced ? "bal" : "nobal") << "_"
       << (displacement ? "disp" : "nodisp") << "_s" << stash << "_"
       << (mode == ConcurrencyMode::kOptimistic ? "opt" : "rw");
    return os.str();
  }
};

// Structural invariants of a segment (checked quiescently):
//  1. the packed counter equals the popcount of the allocation bitmap;
//  2. a record with membership=0 lives in its home bucket; membership=1
//     lives in home+1 (balanced insert / displacement target, §4.3);
//  3. every stash record is discoverable: a matching overflow fingerprint
//     in the home or probing bucket, or a positive overflow counter on the
//     home bucket (otherwise searches would early-stop and miss it, §4.3).
void CheckSegmentInvariants(Segment* seg, const DashOptions& opts) {
  const uint32_t nb = seg->num_buckets();
  const uint32_t mask = nb - 1;
  for (uint32_t i = 0; i < nb + seg->num_stash(); ++i) {
    Bucket* b = seg->bucket(i);
    const uint32_t meta = b->meta();
    ASSERT_EQ(Bucket::Count(meta),
              static_cast<uint32_t>(
                  __builtin_popcount(Bucket::AllocBits(meta))))
        << "bucket " << i << ": counter out of sync";
    if (i >= nb) continue;  // membership semantics apply to normal buckets
    for (uint32_t slot = 0; slot < Bucket::kNumSlots; ++slot) {
      if (((Bucket::AllocBits(meta) >> slot) & 1) == 0) continue;
      const uint64_t h = IntKeyPolicy::HashStored(b->record(slot).key);
      const uint32_t home = Segment::BucketIndex(h, nb);
      if (b->SlotMembership(meta, slot)) {
        ASSERT_EQ((home + 1) & mask, i)
            << "member=1 record must sit in its probing bucket";
      } else {
        ASSERT_EQ(home, i) << "member=0 record must sit in its home bucket";
      }
      ASSERT_EQ(Segment::Fingerprint(h), b->fingerprint(slot))
          << "stored fingerprint must match the key hash";
    }
  }
  if (!opts.use_overflow_metadata) return;
  for (uint32_t s = 0; s < seg->num_stash(); ++s) {
    Bucket* stash = seg->stash_bucket(s);
    const uint32_t meta = stash->meta();
    for (uint32_t slot = 0; slot < Bucket::kNumSlots; ++slot) {
      if (((Bucket::AllocBits(meta) >> slot) & 1) == 0) continue;
      const uint64_t h = IntKeyPolicy::HashStored(stash->record(slot).key);
      const uint32_t home = Segment::BucketIndex(h, nb);
      const uint8_t fp = Segment::Fingerprint(h);
      Bucket* hb = seg->bucket(home);
      Bucket* pb = seg->bucket((home + 1) & mask);
      const bool hinted =
          (hb->OverflowStashHints(fp, false) & (1u << s)) != 0 ||
          (pb->OverflowStashHints(fp, true) & (1u << s)) != 0;
      ASSERT_TRUE(hinted || hb->overflow_count() > 0)
          << "stash record would be invisible to searches";
    }
  }
}

class EhPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(EhPropertyTest, RandomWorkloadKeepsInvariants) {
  const PropertyCase& c = GetParam();
  test::TempPoolFile file("prop_eh_" + c.Name());
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.stash_buckets = c.stash;
  opts.use_fingerprints = c.fingerprints;
  opts.use_overflow_metadata = c.overflow_metadata;
  opts.use_balanced_insert = c.balanced;
  opts.use_displacement = c.displacement;
  opts.concurrency = c.mode;
  DashEH<> table(pool.get(), &epochs, opts);

  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(0xD45Bu);
  for (int iter = 0; iter < 60000; ++iter) {
    const uint64_t key = rng.NextBounded(8000) + 1;
    uint64_t value;
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        const bool inserted = table.Insert(key, key + iter) == OpStatus::kOk;
        ASSERT_EQ(inserted, !model.count(key)) << c.Name();
        if (inserted) model[key] = key + iter;
        break;
      }
      case 2: {
        const bool found = table.Search(key, &value) == OpStatus::kOk;
        ASSERT_EQ(found, model.count(key) == 1) << c.Name();
        if (found) {
          ASSERT_EQ(value, model[key]);
        }
        break;
      }
      default: {
        const bool deleted = table.Delete(key) == OpStatus::kOk;
        ASSERT_EQ(deleted, model.erase(key) == 1) << c.Name();
        break;
      }
    }
  }
  ASSERT_EQ(table.Size(), model.size());
  table.ForEachSegment(
      [&](Segment* seg) { CheckSegmentInvariants(seg, opts); });
  table.CloseClean();
  pool->CloseClean();
}

std::vector<PropertyCase> EhCases() {
  std::vector<PropertyCase> cases;
  // Full stack in both concurrency modes and several stash counts.
  for (uint32_t stash : {0u, 1u, 2u, 4u}) {
    cases.push_back({true, true, true, true, stash,
                     ConcurrencyMode::kOptimistic});
  }
  cases.push_back({true, true, true, true, 2, ConcurrencyMode::kRwLock});
  // Each technique disabled individually.
  cases.push_back({false, true, true, true, 2,
                   ConcurrencyMode::kOptimistic});
  cases.push_back({true, false, true, true, 2,
                   ConcurrencyMode::kOptimistic});
  cases.push_back({true, true, false, true, 2,
                   ConcurrencyMode::kOptimistic});
  cases.push_back({true, true, true, false, 2,
                   ConcurrencyMode::kOptimistic});
  // Minimal configuration.
  cases.push_back({false, false, false, false, 0,
                   ConcurrencyMode::kOptimistic});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(OptionSweep, EhPropertyTest,
                         ::testing::ValuesIn(EhCases()),
                         [](const ::testing::TestParamInfo<PropertyCase>& i) {
                           return i.param.Name();
                         });

class LhPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(LhPropertyTest, RandomWorkloadKeepsInvariants) {
  const PropertyCase& c = GetParam();
  test::TempPoolFile file("prop_lh_" + c.Name());
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.stash_buckets = c.stash;
  opts.use_fingerprints = c.fingerprints;
  opts.use_overflow_metadata = c.overflow_metadata;
  opts.use_balanced_insert = c.balanced;
  opts.use_displacement = c.displacement;
  opts.concurrency = c.mode;
  opts.lh_base_segments = 4;
  opts.lh_stride = 2;
  DashLH<> table(pool.get(), &epochs, opts);

  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(0x1A5Bu);
  for (int iter = 0; iter < 60000; ++iter) {
    const uint64_t key = rng.NextBounded(8000) + 1;
    uint64_t value;
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        const bool inserted = table.Insert(key, key + iter) == OpStatus::kOk;
        ASSERT_EQ(inserted, !model.count(key)) << c.Name();
        if (inserted) model[key] = key + iter;
        break;
      }
      case 2: {
        const bool found = table.Search(key, &value) == OpStatus::kOk;
        ASSERT_EQ(found, model.count(key) == 1) << c.Name();
        if (found) {
          ASSERT_EQ(value, model[key]);
        }
        break;
      }
      default: {
        const bool deleted = table.Delete(key) == OpStatus::kOk;
        ASSERT_EQ(deleted, model.erase(key) == 1) << c.Name();
        break;
      }
    }
  }
  ASSERT_EQ(table.Size(), model.size());
  table.ForEachSegment([&](Segment* seg) {
    if (seg->state() == Segment::kNew) return;  // pre-created empty buddy
    CheckSegmentInvariants(seg, opts);
  });
  table.CloseClean();
  pool->CloseClean();
}

std::vector<PropertyCase> LhCases() {
  return {
      {true, true, true, true, 2, ConcurrencyMode::kOptimistic},
      {true, true, true, true, 1, ConcurrencyMode::kOptimistic},
      {false, true, true, true, 2, ConcurrencyMode::kOptimistic},
      {true, false, true, true, 2, ConcurrencyMode::kOptimistic},
      {true, true, true, true, 2, ConcurrencyMode::kRwLock},
  };
}

INSTANTIATE_TEST_SUITE_P(OptionSweep, LhPropertyTest,
                         ::testing::ValuesIn(LhCases()),
                         [](const ::testing::TestParamInfo<PropertyCase>& i) {
                           return i.param.Name();
                         });

}  // namespace
}  // namespace dash
