// PM emulation layer tests: latency injection wiring and counter
// semantics under table operations.

#include <chrono>

#include <gtest/gtest.h>

#include "dash/dash_eh.h"
#include "pmem/persist.h"
#include "pmem/stats.h"
#include "test_util.h"

namespace dash::pmem {
namespace {

TEST(EmulationTest, FlushLatencyInjectionSlowsPersist) {
  auto& config = GetEmulationConfig();
  using Clock = std::chrono::steady_clock;
  alignas(64) static char line[64];

  constexpr int kIters = 2000;
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) Persist(line, 64);
  const auto base = Clock::now() - t0;

  config.flush_latency_ns.store(5000, std::memory_order_relaxed);
  const auto t1 = Clock::now();
  for (int i = 0; i < kIters; ++i) Persist(line, 64);
  const auto slowed = Clock::now() - t1;
  config.flush_latency_ns.store(0, std::memory_order_relaxed);

  // 2000 x 5 us >= 10 ms of injected latency; allow generous slack.
  EXPECT_GT(std::chrono::duration_cast<std::chrono::milliseconds>(slowed)
                .count(),
            std::chrono::duration_cast<std::chrono::milliseconds>(base)
                    .count() +
                5);
}

TEST(EmulationTest, TableWorksWithLatencyInjection) {
  auto& config = GetEmulationConfig();
  config.flush_latency_ns.store(50, std::memory_order_relaxed);
  config.read_latency_ns.store(100, std::memory_order_relaxed);

  test::TempPoolFile file("emulation");
  auto pool = test::CreatePool(file, 64ull << 20);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  opts.buckets_per_segment = 16;
  DashEH<> table(pool.get(), &epochs, opts);
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_EQ(table.Insert(k, k), OpStatus::kOk);
  }
  uint64_t value;
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_EQ(table.Search(k, &value), OpStatus::kOk);
  }
  config.flush_latency_ns.store(0, std::memory_order_relaxed);
  config.read_latency_ns.store(0, std::memory_order_relaxed);
  table.CloseClean();
  pool->CloseClean();
}

TEST(EmulationTest, InsertFlushCountMatchesProtocol) {
  test::TempPoolFile file("emu_counts");
  auto pool = test::CreatePool(file, 64ull << 20);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  DashEH<> table(pool.get(), &epochs, opts);
  // Warm up (allocations, first splits).
  for (uint64_t k = 1; k <= 1000; ++k) table.Insert(k, k);

  ResetPmStats();
  for (uint64_t k = 1001; k <= 2000; ++k) table.Insert(k, k);
  const PmStats stats = AggregatePmStats();
  // Algorithm 2: record persist (1 line) + metadata persist (1 line) per
  // insert, plus occasional split/stash overhead.
  const double clwb_per_insert = static_cast<double>(stats.clwb) / 1000.0;
  EXPECT_GE(clwb_per_insert, 2.0);
  EXPECT_LE(clwb_per_insert, 6.0);

  ResetPmStats();
  uint64_t value;
  for (uint64_t k = 1; k <= 1000; ++k) table.Search(k, &value);
  EXPECT_EQ(AggregatePmStats().clwb, 0u)
      << "optimistic searches must never flush";
  table.CloseClean();
  pool->CloseClean();
}

}  // namespace
}  // namespace dash::pmem
