// Crash-instant fuzzing: instead of crashing at the first hit of a crash
// point, crash at the N-th hit for a sweep of N values and random points.
// This explores many distinct persistent-state snapshots (different
// segments mid-split, different records mid-displacement) and checks the
// global recovery contract after each: no committed record lost, no
// duplicates, table fully operational.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dash/dash_eh.h"
#include "dash/dash_lh.h"
#include "pmem/crash_point.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash {
namespace {

struct FuzzCase {
  const char* point;
  uint64_t skip;  // crash at the (skip+1)-th hit
};

std::string CaseName(const ::testing::TestParamInfo<FuzzCase>& info) {
  return std::string(info.param.point) + "_skip" +
         std::to_string(info.param.skip);
}

class EhCrashFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(EhCrashFuzz, RecoveryContractHolds) {
  const FuzzCase& c = GetParam();
  test::TempPoolFile file(std::string("fuzz_eh_") + CaseName({c, 0}));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.stash_buckets = 2;
  auto table = std::make_unique<DashEH<>>(pool.get(), &epochs, opts);

  ASSERT_TRUE(pmem::CrashPointArm(c.point, c.skip));
  uint64_t crashed_key = 0;
  for (uint64_t k = 1; k <= 60000 && crashed_key == 0; ++k) {
    try {
      table->Insert(k, k);
    } catch (const pmem::CrashInjected&) {
      crashed_key = k;
    }
  }
  pmem::CrashPointDisarm();
  if (crashed_key == 0) {
    GTEST_SKIP() << "crash point " << c.point << " not reached " << c.skip + 1
                 << " times in this workload";
  }

  epochs.DiscardAll();
  table.reset();
  pool->CloseDirty();
  pool.reset();
  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  table = std::make_unique<DashEH<>>(pool.get(), &epochs, opts);

  uint64_t value;
  for (uint64_t k = 1; k < crashed_key; ++k) {
    ASSERT_EQ(table->Search(k, &value), OpStatus::kOk)
        << "key " << k << " lost (" << c.point << " skip " << c.skip << ")";
    ASSERT_EQ(value, k);
  }
  // No duplicates: total records equals distinct findable keys.
  uint64_t found = crashed_key - 1;
  if (table->Search(crashed_key, &value) == OpStatus::kOk) ++found;
  EXPECT_EQ(table->Size(), found);
  // Fully operational afterwards.
  for (uint64_t k = crashed_key + 1; k <= crashed_key + 2000; ++k) {
    ASSERT_EQ(table->Insert(k, k), OpStatus::kOk);
  }
  table->CloseClean();
  pool->CloseClean();
}

std::vector<FuzzCase> EhCases() {
  std::vector<FuzzCase> cases;
  for (const char* point :
       {"eh_split_after_mark", "eh_split_after_activate",
        "eh_split_after_rehash", "eh_split_after_dir_update",
        "displace_after_insert", "stash_after_insert"}) {
    for (uint64_t skip : {0ull, 3ull, 17ull, 64ull}) {
      cases.push_back({point, skip});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EhCrashFuzz, ::testing::ValuesIn(EhCases()),
                         CaseName);

class LhCrashFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(LhCrashFuzz, RecoveryContractHolds) {
  const FuzzCase& c = GetParam();
  test::TempPoolFile file(std::string("fuzz_lh_") + CaseName({c, 0}));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.stash_buckets = 2;
  opts.lh_base_segments = 4;
  opts.lh_stride = 2;
  auto table = std::make_unique<DashLH<>>(pool.get(), &epochs, opts);

  ASSERT_TRUE(pmem::CrashPointArm(c.point, c.skip));
  uint64_t crashed_key = 0;
  for (uint64_t k = 1; k <= 80000 && crashed_key == 0; ++k) {
    try {
      table->Insert(k, k);
    } catch (const pmem::CrashInjected&) {
      crashed_key = k;
    }
  }
  pmem::CrashPointDisarm();
  if (crashed_key == 0) {
    GTEST_SKIP() << "crash point not reached often enough";
  }

  epochs.DiscardAll();
  table.reset();
  pool->CloseDirty();
  pool.reset();
  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  table = std::make_unique<DashLH<>>(pool.get(), &epochs, opts);

  uint64_t value;
  for (uint64_t k = 1; k < crashed_key; ++k) {
    ASSERT_EQ(table->Search(k, &value), OpStatus::kOk)
        << "key " << k << " lost (" << c.point << " skip " << c.skip << ")";
  }
  uint64_t found = crashed_key - 1;
  if (table->Search(crashed_key, &value) == OpStatus::kOk) ++found;
  EXPECT_EQ(table->Size(), found);
  for (uint64_t k = crashed_key + 1; k <= crashed_key + 2000; ++k) {
    ASSERT_EQ(table->Insert(k, k), OpStatus::kOk);
  }
  table->CloseClean();
  pool->CloseClean();
}

std::vector<FuzzCase> LhCases() {
  std::vector<FuzzCase> cases;
  for (const char* point :
       {"lh_split_after_mark", "lh_split_after_rehash",
        "lh_expand_after_advance", "lh_chain_after_publish",
        "displace_after_insert", "stash_after_insert"}) {
    for (uint64_t skip : {0ull, 5ull, 23ull}) {
      cases.push_back({point, skip});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LhCrashFuzz, ::testing::ValuesIn(LhCases()),
                         CaseName);

}  // namespace
}  // namespace dash
