// Level hashing baseline tests: two-level addressing, movement, full-table
// resize, high load factor, constant-time recovery.

#include "level/level_hashing.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dash::level {
namespace {

class LevelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>("level");
    pool_ = test::CreatePool(*file_);
    ASSERT_NE(pool_, nullptr);
    opts_.initial_top_buckets = 64;  // small so resizes happen in tests
    table_ = std::make_unique<LevelHashing<>>(pool_.get(), &epochs_, opts_);
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  LevelOptions opts_;
  std::unique_ptr<LevelHashing<>> table_;
};

TEST_F(LevelTest, BasicRoundTrip) {
  EXPECT_EQ(table_->Insert(1, 10), OpStatus::kOk);
  uint64_t value = 0;
  EXPECT_EQ(table_->Search(1, &value), OpStatus::kOk);
  EXPECT_EQ(value, 10u);
  EXPECT_EQ(table_->Delete(1), OpStatus::kOk);
  EXPECT_EQ(table_->Search(1, &value), OpStatus::kNotFound);
}

TEST_F(LevelTest, DuplicateRejected) {
  EXPECT_EQ(table_->Insert(2, 1), OpStatus::kOk);
  EXPECT_EQ(table_->Insert(2, 9), OpStatus::kExists);
  uint64_t value;
  ASSERT_EQ(table_->Search(2, &value), OpStatus::kOk);
  EXPECT_EQ(value, 1u);
}

TEST_F(LevelTest, ResizesUnderLoadAndKeepsRecords) {
  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table_->Insert(k, k * 3), OpStatus::kOk) << "key " << k;
  }
  const LevelStats stats = table_->Stats();
  EXPECT_GT(stats.resizes, 0u) << "64-bucket table must have resized";
  EXPECT_EQ(stats.records, kKeys);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k * 3);
  }
}

TEST_F(LevelTest, AchievesHighLoadFactorBeforeResize) {
  // Insert until just before the second resize and check peak load factor.
  uint64_t resizes_seen = 0;
  double peak = 0;
  for (uint64_t k = 1; k <= 100000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
    const LevelStats stats = table_->Stats();
    if (stats.resizes > resizes_seen) {
      resizes_seen = stats.resizes;
      if (resizes_seen == 2) break;
    }
    peak = std::max(peak, stats.load_factor);
  }
  EXPECT_GT(peak, 0.75) << "level hashing reaches a high load factor "
                           "before resorting to resize (Fig. 12)";
}

TEST_F(LevelTest, DeleteFromBothLevels) {
  for (uint64_t k = 1; k <= 3000; ++k) ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  for (uint64_t k = 1; k <= 3000; ++k) {
    ASSERT_EQ(table_->Delete(k), OpStatus::kOk) << "key " << k;
  }
  EXPECT_EQ(table_->Size(), 0u);
}

TEST_F(LevelTest, NegativeSearches) {
  for (uint64_t k = 1; k <= 5000; ++k) ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  uint64_t value;
  for (uint64_t k = 1000000; k < 1001000; ++k) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kNotFound);
  }
}

TEST_F(LevelTest, PersistsAcrossCleanRestart) {
  for (uint64_t k = 1; k <= 10000; ++k) {
    ASSERT_EQ(table_->Insert(k, k ^ 0xABCD), OpStatus::kOk);
  }
  table_->CloseClean();
  table_.reset();
  pool_->CloseClean();
  pool_.reset();

  pool_ = pmem::PmPool::Open(file_->path());
  ASSERT_NE(pool_, nullptr);
  table_ = std::make_unique<LevelHashing<>>(pool_.get(), &epochs_, opts_);
  for (uint64_t k = 1; k <= 10000; ++k) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k ^ 0xABCD);
  }
}

TEST_F(LevelTest, CrashBeforeResizeCommitKeepsOldTable) {
  // Fill until a resize is imminent; crash during the resize; the old
  // structure must be fully intact.
  uint64_t k = 1;
  bool crashed = false;
  ASSERT_TRUE(pmem::CrashPointArm("level_resize_before_commit"));
  try {
    for (; k <= 100000 && !crashed; ++k) {
      table_->Insert(k, k);
    }
  } catch (const pmem::CrashInjected&) {
    crashed = true;
  }
  pmem::CrashPointDisarm();
  ASSERT_TRUE(crashed) << "no resize happened";
  epochs_.DiscardAll();
  table_.reset();
  pool_->CloseDirty();
  pool_.reset();

  pool_ = pmem::PmPool::Open(file_->path());
  ASSERT_NE(pool_, nullptr);
  table_ = std::make_unique<LevelHashing<>>(pool_.get(), &epochs_, opts_);
  uint64_t value;
  for (uint64_t j = 1; j < k - 1; ++j) {
    ASSERT_EQ(table_->Search(j, &value), OpStatus::kOk) << "key " << j;
    ASSERT_EQ(value, j);
  }
}

TEST_F(LevelTest, CrashAfterResizeCommitUsesNewTable) {
  uint64_t k = 1;
  bool crashed = false;
  ASSERT_TRUE(pmem::CrashPointArm("level_resize_after_commit"));
  try {
    for (; k <= 100000 && !crashed; ++k) {
      table_->Insert(k, k);
    }
  } catch (const pmem::CrashInjected&) {
    crashed = true;
  }
  pmem::CrashPointDisarm();
  ASSERT_TRUE(crashed);
  epochs_.DiscardAll();  // pending reclaims reference the dying pool
  table_.reset();
  pool_->CloseDirty();
  pool_.reset();

  pool_ = pmem::PmPool::Open(file_->path());
  ASSERT_NE(pool_, nullptr);
  table_ = std::make_unique<LevelHashing<>>(pool_.get(), &epochs_, opts_);
  uint64_t value;
  // The insert that triggered the resize may not have completed; all
  // earlier keys must be present.
  for (uint64_t j = 1; j + 1 < k; ++j) {
    ASSERT_EQ(table_->Search(j, &value), OpStatus::kOk) << "key " << j;
  }
}

}  // namespace
}  // namespace dash::level
