#include "util/lock.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dash/bucket.h"

namespace dash {
namespace {

TEST(SpinLockTest, MutualExclusion) {
  util::SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        util::SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
  util::SpinLock lock;
  ASSERT_TRUE(lock.TryLock());
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(RwSpinLockTest, SharedReadersCoexist) {
  util::RwSpinLock lock;
  lock.LockShared();
  lock.LockShared();  // second reader must not block
  lock.UnlockShared();
  lock.UnlockShared();
}

TEST(RwSpinLockTest, WriterExcludesReaders) {
  util::RwSpinLock lock;
  lock.Lock();
  std::atomic<bool> reader_in{false};
  std::thread reader([&] {
    lock.LockShared();
    reader_in.store(true);
    lock.UnlockShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(reader_in.load());
  lock.Unlock();
  reader.join();
  EXPECT_TRUE(reader_in.load());
}

TEST(RwSpinLockTest, WriterCountsUnderConcurrency) {
  util::RwSpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 20000);
}

TEST(VersionLockTest, VersionAdvancesOnUnlock) {
  util::VersionLock lock;
  const uint32_t v0 = lock.Snapshot();
  lock.Lock();
  lock.Unlock();
  EXPECT_TRUE(lock.Verify(lock.Snapshot()));
  EXPECT_FALSE(lock.Verify(v0));
}

TEST(VersionLockTest, SnapshotUnlockedBitClear) {
  util::VersionLock lock;
  EXPECT_FALSE(util::VersionLock::IsLocked(lock.Snapshot()));
  lock.Lock();
  EXPECT_TRUE(lock.IsLockedNow());
  lock.Unlock();
  EXPECT_FALSE(lock.IsLockedNow());
}

// BucketLock: the dual-mode lock used by Dash buckets.
TEST(BucketLockTest, OptimisticVersioning) {
  BucketLock lock;
  const uint32_t snap = lock.Snapshot();
  EXPECT_TRUE(lock.Verify(snap));
  lock.LockExclusive(ConcurrencyMode::kOptimistic);
  lock.UnlockExclusive(ConcurrencyMode::kOptimistic);
  EXPECT_FALSE(lock.Verify(snap)) << "writer must bump the version";
}

TEST(BucketLockTest, RwModeSharedReaders) {
  BucketLock lock;
  lock.LockShared();
  lock.LockShared();
  EXPECT_FALSE(lock.TryLockExclusive(ConcurrencyMode::kRwLock))
      << "writer must wait for readers";
  lock.UnlockShared();
  lock.UnlockShared();
  EXPECT_TRUE(lock.TryLockExclusive(ConcurrencyMode::kRwLock));
  lock.UnlockExclusive(ConcurrencyMode::kRwLock);
}

TEST(BucketLockTest, ResetClearsCrashState) {
  BucketLock lock;
  lock.LockExclusive(ConcurrencyMode::kOptimistic);
  lock.Reset();  // simulated crash recovery
  EXPECT_TRUE(lock.TryLockExclusive(ConcurrencyMode::kOptimistic));
  lock.UnlockExclusive(ConcurrencyMode::kOptimistic);
}

TEST(BucketLockTest, ExclusiveMutualExclusionBothModes) {
  for (auto mode : {ConcurrencyMode::kOptimistic, ConcurrencyMode::kRwLock}) {
    BucketLock lock;
    int counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 5000; ++i) {
          lock.LockExclusive(mode);
          ++counter;
          lock.UnlockExclusive(mode);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(counter, 20000);
  }
}

}  // namespace
}  // namespace dash
