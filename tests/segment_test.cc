// Segment-level tests: balanced insert, displacement, stashing, overflow
// metadata, and the recovery passes (dedup, metadata rebuild).

#include "dash/segment.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "dash/key_policy.h"
#include "pmem/pool.h"
#include "test_util.h"
#include "util/hash.h"

namespace dash {
namespace {

constexpr auto kNoVerify = [] { return true; };

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>("segment");
    pool_ = test::CreatePool(*file_);
    ASSERT_NE(pool_, nullptr);
    seg_ = NewSegment(opts_);
  }

  Segment* NewSegment(const DashOptions& opts) {
    auto* seg = static_cast<Segment*>(pool_->allocator().Alloc(
        Segment::AllocSize(opts.buckets_per_segment, opts.stash_buckets)));
    seg->Initialize(opts.buckets_per_segment, opts.stash_buckets,
                    /*depth=*/0, /*pattern=*/0, Segment::kClean,
                    /*version=*/1);
    return seg;
  }

  OpStatus Insert(uint64_t key, uint64_t value) {
    return seg_->Insert<IntKeyPolicy>(key, value, util::HashInt64(key), opts_,
                                      &pool_->allocator(),
                                      /*allow_stash_chain=*/false, kNoVerify);
  }
  OpStatus Search(uint64_t key, uint64_t* out) {
    return seg_->Search<IntKeyPolicy>(key, util::HashInt64(key), opts_, out,
                                      kNoVerify);
  }
  OpStatus Delete(uint64_t key) {
    return seg_->Delete<IntKeyPolicy>(key, util::HashInt64(key), opts_,
                                      &pool_->allocator(), kNoVerify);
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  Segment* seg_ = nullptr;
  DashOptions opts_;
};

TEST_F(SegmentTest, InsertSearchDeleteRoundTrip) {
  EXPECT_EQ(Insert(101, 1), OpStatus::kOk);
  uint64_t value = 0;
  EXPECT_EQ(Search(101, &value), OpStatus::kOk);
  EXPECT_EQ(value, 1u);
  EXPECT_EQ(Delete(101), OpStatus::kOk);
  EXPECT_EQ(Search(101, &value), OpStatus::kNotFound);
  EXPECT_EQ(Delete(101), OpStatus::kNotFound);
}

TEST_F(SegmentTest, DuplicateInsertRejected) {
  EXPECT_EQ(Insert(7, 1), OpStatus::kOk);
  EXPECT_EQ(Insert(7, 2), OpStatus::kExists);
  uint64_t value = 0;
  ASSERT_EQ(Search(7, &value), OpStatus::kOk);
  EXPECT_EQ(value, 1u) << "duplicate insert must not overwrite";
}

TEST_F(SegmentTest, ManyKeysAllRetrievable) {
  std::vector<uint64_t> inserted;
  for (uint64_t k = 1; k < 500; ++k) {
    if (Insert(k, k * 3) == OpStatus::kOk) {
      inserted.push_back(k);
    } else {
      break;  // segment full
    }
  }
  EXPECT_GT(inserted.size(), 300u);
  for (uint64_t k : inserted) {
    uint64_t value = 0;
    ASSERT_EQ(Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k * 3);
  }
  EXPECT_EQ(seg_->RecordCount(), inserted.size());
}

TEST_F(SegmentTest, NegativeSearchOnPopulatedSegment) {
  for (uint64_t k = 1; k <= 200; ++k) ASSERT_EQ(Insert(k, k), OpStatus::kOk);
  uint64_t value;
  for (uint64_t k = 1000000; k < 1000200; ++k) {
    ASSERT_EQ(Search(k, &value), OpStatus::kNotFound);
  }
}

TEST_F(SegmentTest, FillUntilNeedSplitAndLoadFactorHigh) {
  uint64_t k = 1;
  while (Insert(k, k) == OpStatus::kOk) ++k;
  // With balanced insert + displacement + 2 stash buckets, a 16 KB segment
  // reaches a high load factor before demanding a split (paper Fig. 11).
  EXPECT_GT(seg_->Fullness(), 0.75);
}

TEST_F(SegmentTest, BucketizedModeFillsLess) {
  DashOptions bucketized;
  bucketized.use_probing_bucket = false;
  bucketized.use_balanced_insert = false;
  bucketized.use_displacement = false;
  bucketized.stash_buckets = 0;
  Segment* seg = NewSegment(bucketized);
  uint64_t k = 1;
  while (seg->Insert<IntKeyPolicy>(k, k, util::HashInt64(k), bucketized,
                                   &pool_->allocator(), false,
                                   kNoVerify) == OpStatus::kOk) {
    ++k;
  }
  // The first full bucket stops the fill early: load factor below the full
  // technique stack's (this gap is exactly Fig. 11's message).
  EXPECT_LT(seg->Fullness(), 0.8);
  EXPECT_GT(seg->Fullness(), 0.05);
}

TEST_F(SegmentTest, TechniqueStackImprovesLoadFactor) {
  // Each added technique must not *reduce* achievable load factor.
  auto fill = [&](const DashOptions& o) {
    Segment* seg = NewSegment(o);
    uint64_t k = 1;
    while (seg->Insert<IntKeyPolicy>(k, k, util::HashInt64(k), o,
                                     &pool_->allocator(), false,
                                     kNoVerify) == OpStatus::kOk) {
      ++k;
    }
    return seg->Fullness();
  };
  DashOptions bucketized;
  bucketized.use_probing_bucket = false;
  bucketized.use_balanced_insert = false;
  bucketized.use_displacement = false;
  bucketized.stash_buckets = 0;
  DashOptions probing = bucketized;
  probing.use_probing_bucket = true;
  DashOptions balanced = probing;
  balanced.use_balanced_insert = true;
  DashOptions displaced = balanced;
  displaced.use_displacement = true;
  DashOptions stashed = displaced;
  stashed.stash_buckets = 2;

  const double lf_bucketized = fill(bucketized);
  const double lf_probing = fill(probing);
  const double lf_balanced = fill(balanced);
  const double lf_displaced = fill(displaced);
  const double lf_stashed = fill(stashed);
  EXPECT_GE(lf_probing, lf_bucketized);
  EXPECT_GE(lf_balanced, lf_probing * 0.95);
  EXPECT_GE(lf_displaced, lf_balanced * 0.95);
  EXPECT_GT(lf_stashed, lf_displaced);
  EXPECT_GT(lf_stashed, 0.75);
}

TEST_F(SegmentTest, StashRecordsFoundViaOverflowMetadata) {
  // Fill until some records must be in the stash; all must stay findable.
  std::vector<uint64_t> keys;
  uint64_t k = 1;
  while (Insert(k, k + 7) == OpStatus::kOk) {
    keys.push_back(k);
    ++k;
  }
  uint64_t stash_records = 0;
  for (uint32_t i = 0; i < seg_->num_stash(); ++i) {
    stash_records += seg_->stash_bucket(i)->count();
  }
  EXPECT_GT(stash_records, 0u) << "fill must have reached the stash";
  for (uint64_t key : keys) {
    uint64_t value = 0;
    ASSERT_EQ(Search(key, &value), OpStatus::kOk) << "key " << key;
    ASSERT_EQ(value, key + 7);
  }
}

TEST_F(SegmentTest, DeleteStashRecordMaintainsMetadata) {
  std::vector<uint64_t> keys;
  uint64_t k = 1;
  while (Insert(k, k) == OpStatus::kOk) keys.push_back(k++);
  // Find a key that lives in the stash.
  uint64_t stash_key = 0;
  for (uint64_t key : keys) {
    const uint64_t h = util::HashInt64(key);
    const uint8_t fp = Segment::Fingerprint(h);
    for (uint32_t i = 0; i < seg_->num_stash() && stash_key == 0; ++i) {
      if (seg_->stash_bucket(i)->FindKey<IntKeyPolicy>(fp, key, opts_) >= 0) {
        stash_key = key;
      }
    }
    if (stash_key != 0) break;
  }
  ASSERT_NE(stash_key, 0u);
  EXPECT_EQ(Delete(stash_key), OpStatus::kOk);
  uint64_t value;
  EXPECT_EQ(Search(stash_key, &value), OpStatus::kNotFound);
  // All other keys still present.
  for (uint64_t key : keys) {
    if (key == stash_key) continue;
    ASSERT_EQ(Search(key, &value), OpStatus::kOk);
  }
}

TEST_F(SegmentTest, ForEachRecordSeesEverything) {
  for (uint64_t k = 1; k <= 100; ++k) ASSERT_EQ(Insert(k, k), OpStatus::kOk);
  std::set<uint64_t> seen;
  seg_->ForEachRecord([&](Bucket* b, int slot) {
    seen.insert(b->record(slot).key);
  });
  EXPECT_EQ(seen.size(), 100u);
  for (uint64_t k = 1; k <= 100; ++k) EXPECT_TRUE(seen.count(k));
}

TEST_F(SegmentTest, DedupAdjacentRemovesDisplacedDuplicate) {
  // Manufacture the crash state of an interrupted displacement: the same
  // key in bucket y (home, member=0) and bucket y+1 (member=1).
  const uint64_t key = 4242;
  const uint64_t h = util::HashInt64(key);
  const uint8_t fp = Segment::Fingerprint(h);
  const uint32_t y = Segment::BucketIndex(h, seg_->num_buckets());
  const uint32_t y1 = (y + 1) & (seg_->num_buckets() - 1);
  ASSERT_TRUE(seg_->bucket(y)->Insert(key, 1, fp, /*member=*/false));
  ASSERT_TRUE(seg_->bucket(y1)->Insert(key, 1, fp, /*member=*/true));

  seg_->DedupAdjacent<IntKeyPolicy>(opts_);
  EXPECT_EQ(seg_->RecordCount(), 1u);
  uint64_t value = 0;
  EXPECT_EQ(Search(key, &value), OpStatus::kOk);
  EXPECT_EQ(value, 1u);
}

TEST_F(SegmentTest, DedupKeepsDistinctKeys) {
  for (uint64_t k = 1; k <= 50; ++k) ASSERT_EQ(Insert(k, k), OpStatus::kOk);
  const uint64_t before = seg_->RecordCount();
  seg_->DedupAdjacent<IntKeyPolicy>(opts_);
  EXPECT_EQ(seg_->RecordCount(), before);
}

TEST_F(SegmentTest, RebuildOverflowMetadataRestoresHints) {
  std::vector<uint64_t> keys;
  uint64_t k = 1;
  while (Insert(k, k) == OpStatus::kOk) keys.push_back(k++);
  // Wipe the (non-persisted) metadata, as a crash would.
  for (uint32_t i = 0; i < seg_->num_buckets(); ++i) {
    seg_->bucket(i)->ClearOverflowMetadata();
  }
  seg_->RebuildOverflowMetadata<IntKeyPolicy>(opts_);
  for (uint64_t key : keys) {
    uint64_t value = 0;
    ASSERT_EQ(Search(key, &value), OpStatus::kOk) << "key " << key;
  }
}

TEST_F(SegmentTest, ResetAllLocksClearsCrashLocks) {
  seg_->bucket(3)->lock().LockExclusive(opts_.concurrency);
  seg_->stash_bucket(0)->lock().LockExclusive(opts_.concurrency);
  seg_->ResetAllLocks();
  EXPECT_EQ(Insert(12345, 1), OpStatus::kOk) << "locks must be clear";
}

TEST_F(SegmentTest, StashChainAbsorbsOverflow) {
  // With chaining allowed (Dash-LH mode), inserts never fail.
  uint64_t k = 1;
  OpStatus status = OpStatus::kOk;
  for (; k <= 2000 && status == OpStatus::kOk; ++k) {
    status = seg_->Insert<IntKeyPolicy>(k, k, util::HashInt64(k), opts_,
                                        &pool_->allocator(),
                                        /*allow_stash_chain=*/true, kNoVerify);
  }
  EXPECT_EQ(status, OpStatus::kOk);
  EXPECT_NE(seg_->stash_chain(), nullptr);
  for (uint64_t key = 1; key < k; ++key) {
    uint64_t value = 0;
    ASSERT_EQ(Search(key, &value), OpStatus::kOk) << "key " << key;
  }
  EXPECT_EQ(seg_->RecordCount(), k - 1);
}

TEST_F(SegmentTest, UpdateInNormalAndStashBuckets) {
  // Fill so some records reach the stash, then update everything.
  std::vector<uint64_t> keys;
  uint64_t k = 1;
  while (Insert(k, k) == OpStatus::kOk) keys.push_back(k++);
  for (uint64_t key : keys) {
    ASSERT_EQ(seg_->Update<IntKeyPolicy>(key, key * 9, util::HashInt64(key),
                                         opts_, kNoVerify),
              OpStatus::kOk)
        << "key " << key;
  }
  for (uint64_t key : keys) {
    uint64_t value = 0;
    ASSERT_EQ(Search(key, &value), OpStatus::kOk);
    ASSERT_EQ(value, key * 9);
  }
  EXPECT_EQ(seg_->Update<IntKeyPolicy>(10'000'000, 1,
                                       util::HashInt64(10'000'000), opts_,
                                       kNoVerify),
            OpStatus::kNotFound);
}

TEST_F(SegmentTest, SimdFingerprintMatchAgreesWithScalar) {
  // Insert records with colliding and distinct fingerprints and verify the
  // match mask equals a scalar recomputation.
  for (uint64_t k = 1; k <= 10; ++k) {
    ASSERT_TRUE(seg_->bucket(0)->Insert(k, k, static_cast<uint8_t>(k % 3),
                                        false));
  }
  Bucket* b = seg_->bucket(0);
  const uint32_t alloc = Bucket::AllocBits(b->meta());
  for (uint8_t fp = 0; fp < 5; ++fp) {
    uint32_t scalar = 0;
    for (uint32_t slot = 0; slot < Bucket::kNumSlots; ++slot) {
      if (((alloc >> slot) & 1) != 0 && b->fingerprint(slot) == fp) {
        scalar |= 1u << slot;
      }
    }
    EXPECT_EQ(b->MatchFingerprints(fp, alloc), scalar) << "fp " << int{fp};
  }
}

TEST_F(SegmentTest, RwLockModeRoundTrip) {
  opts_.concurrency = ConcurrencyMode::kRwLock;
  EXPECT_EQ(Insert(5, 50), OpStatus::kOk);
  uint64_t value = 0;
  EXPECT_EQ(Search(5, &value), OpStatus::kOk);
  EXPECT_EQ(value, 50u);
  EXPECT_EQ(Delete(5), OpStatus::kOk);
}

TEST_F(SegmentTest, VerifyFailureReturnsRetry) {
  auto fail = [] { return false; };
  EXPECT_EQ(seg_->Insert<IntKeyPolicy>(1, 1, util::HashInt64(1), opts_,
                                       &pool_->allocator(), false, fail),
            OpStatus::kRetry);
  uint64_t value;
  EXPECT_EQ(
      seg_->Search<IntKeyPolicy>(1, util::HashInt64(1), opts_, &value, fail),
      OpStatus::kRetry);
  EXPECT_EQ(seg_->Delete<IntKeyPolicy>(1, util::HashInt64(1), opts_,
                                       &pool_->allocator(), fail),
            OpStatus::kRetry);
}

// Parameterized sweep over segment sizes (Fig. 11's x-axis): all sizes must
// sustain a high load factor with the full technique stack.
class SegmentSizeSweep : public SegmentTest,
                         public ::testing::WithParamInterface<uint32_t> {};

TEST_P(SegmentSizeSweep, HighLoadFactorAtEverySize) {
  DashOptions o;
  o.buckets_per_segment = GetParam();
  o.stash_buckets = 2;
  Segment* seg = NewSegment(o);
  uint64_t k = 1;
  while (seg->Insert<IntKeyPolicy>(k, k, util::HashInt64(k), o,
                                   &pool_->allocator(), false,
                                   kNoVerify) == OpStatus::kOk) {
    ++k;
  }
  EXPECT_GT(seg->Fullness(), 0.70) << "buckets=" << GetParam();
  // Everything inserted must be findable.
  for (uint64_t key = 1; key < k; ++key) {
    uint64_t value;
    ASSERT_EQ(seg->Search<IntKeyPolicy>(key, util::HashInt64(key), o, &value,
                                        kNoVerify),
              OpStatus::kOk);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SegmentSizeSweep,
                         ::testing::Values(4, 16, 64, 128, 256));

}  // namespace
}  // namespace dash
