// CCEH baseline tests: correctness, bounded probing, split behaviour, the
// characteristic low load factor, and directory-scan recovery.

#include "cceh/cceh.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dash::cceh {
namespace {

class CcehTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>("cceh");
    pool_ = test::CreatePool(*file_);
    ASSERT_NE(pool_, nullptr);
    opts_.buckets_per_segment = 64;  // small segments for fast growth
    opts_.initial_depth = 1;
    table_ = std::make_unique<CCEH<>>(pool_.get(), &epochs_, opts_);
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  CcehOptions opts_;
  std::unique_ptr<CCEH<>> table_;
};

TEST_F(CcehTest, BasicRoundTrip) {
  EXPECT_EQ(table_->Insert(1, 10), OpStatus::kOk);
  uint64_t value = 0;
  EXPECT_EQ(table_->Search(1, &value), OpStatus::kOk);
  EXPECT_EQ(value, 10u);
  EXPECT_EQ(table_->Delete(1), OpStatus::kOk);
  EXPECT_EQ(table_->Search(1, &value), OpStatus::kNotFound);
  EXPECT_EQ(table_->Delete(1), OpStatus::kNotFound);
}

TEST_F(CcehTest, DuplicateRejected) {
  EXPECT_EQ(table_->Insert(3, 1), OpStatus::kOk);
  EXPECT_EQ(table_->Insert(3, 2), OpStatus::kExists);
}

TEST_F(CcehTest, GrowsAndKeepsAllRecords) {
  constexpr uint64_t kKeys = 30000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table_->Insert(k, k * 5), OpStatus::kOk) << "key " << k;
  }
  EXPECT_GT(table_->global_depth(), 1u);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k * 5);
  }
  EXPECT_EQ(table_->Size(), kKeys);
}

TEST_F(CcehTest, LoadFactorIsLow) {
  for (uint64_t k = 1; k <= 30000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  // Pre-mature splits cap CCEH's load factor in the 35-50% band (Fig. 12).
  EXPECT_LT(table_->LoadFactor(), 0.60);
  EXPECT_GT(table_->LoadFactor(), 0.20);
}

TEST_F(CcehTest, DeleteThenReuseSlots) {
  for (uint64_t k = 1; k <= 5000; ++k) ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  for (uint64_t k = 1; k <= 5000; ++k) ASSERT_EQ(table_->Delete(k), OpStatus::kOk);
  EXPECT_EQ(table_->Size(), 0u);
  for (uint64_t k = 5001; k <= 10000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  EXPECT_EQ(table_->Size(), 5000u);
}

TEST_F(CcehTest, PersistsAcrossCleanRestart) {
  for (uint64_t k = 1; k <= 10000; ++k) {
    ASSERT_EQ(table_->Insert(k, k + 1), OpStatus::kOk);
  }
  table_->CloseClean();
  table_.reset();
  pool_->CloseClean();
  pool_.reset();

  pool_ = pmem::PmPool::Open(file_->path());
  ASSERT_NE(pool_, nullptr);
  table_ = std::make_unique<CCEH<>>(pool_.get(), &epochs_, opts_);
  for (uint64_t k = 1; k <= 10000; ++k) {
    uint64_t value = 0;
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k + 1);
  }
}

TEST_F(CcehTest, RecoversAfterCrashViaDirectoryScan) {
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  epochs_.DiscardAll();  // pending reclaims reference the dying pool
  table_.reset();
  pool_->CloseDirty();  // crash
  pool_.reset();

  pool_ = pmem::PmPool::Open(file_->path());
  ASSERT_NE(pool_, nullptr);
  EXPECT_TRUE(pool_->recovered_from_crash());
  table_ = std::make_unique<CCEH<>>(pool_.get(), &epochs_, opts_);
  uint64_t value;
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
  }
  // Table stays writable after recovery.
  EXPECT_EQ(table_->Insert(999999, 1), OpStatus::kOk);
}

TEST_F(CcehTest, CrashDuringSplitRecovers) {
  // Fill to the brink of a split, crash mid-split, verify recovery.
  uint64_t k = 1;
  for (; k <= 50000; ++k) {
    ASSERT_TRUE(pmem::CrashPointArm("cceh_split_after_rehash"));
    bool crashed = false;
    try {
      table_->Insert(k, k);
    } catch (const pmem::CrashInjected&) {
      crashed = true;
    }
    pmem::CrashPointDisarm();
    if (crashed) break;
  }
  ASSERT_LE(k, 50000u) << "no split happened";
  epochs_.DiscardAll();
  table_.reset();
  pool_->CloseDirty();
  pool_.reset();

  pool_ = pmem::PmPool::Open(file_->path());
  ASSERT_NE(pool_, nullptr);
  table_ = std::make_unique<CCEH<>>(pool_.get(), &epochs_, opts_);
  uint64_t value;
  for (uint64_t j = 1; j < k; ++j) {
    ASSERT_EQ(table_->Search(j, &value), OpStatus::kOk) << "key " << j << " lost in crash";
    ASSERT_EQ(value, j);
  }
  // The interrupted insert itself may or may not have landed; the table
  // must accept it now either way.
  if (table_->Search(k, &value) != OpStatus::kOk) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
}

TEST_F(CcehTest, SearchCostsNoPmWritesSinceOptimisticLocking) {
  for (uint64_t k = 1; k <= 1000; ++k) ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  pmem::ResetPmStats();
  const uint64_t write_locks_before = table_->Stats().write_locks;
  uint64_t value;
  for (uint64_t k = 1; k <= 1000; ++k) table_->Search(k, &value);
  // The port originally used pessimistic rw-locks, where every search
  // wrote the PM-resident lock word (Fig. 13's message; this test used
  // to assert >= 2 nt_stores per search). With the optimistic version
  // lock, searches snapshot/revalidate and write nothing at all.
  EXPECT_EQ(pmem::AggregatePmStats().nt_stores, 0u);
  // The table-level telemetry agrees: no exclusive acquisitions either.
  const auto stats = table_->Stats();
  EXPECT_EQ(stats.write_locks, write_locks_before);
  EXPECT_EQ(stats.version_conflicts, 0u);
}

}  // namespace
}  // namespace dash::cceh
