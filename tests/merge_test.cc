// Dash-EH segment merge + directory halving tests (extension feature,
// §4.6-4.7), including crash injection at every merge boundary.

#include <set>

#include <gtest/gtest.h>

#include "dash/dash_eh.h"
#include "pmem/crash_point.h"
#include "test_util.h"

namespace dash {
namespace {

class MergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>("merge");
    pool_ = test::CreatePool(*file_);
    ASSERT_NE(pool_, nullptr);
    opts_.buckets_per_segment = 16;
    opts_.stash_buckets = 2;
    opts_.initial_depth = 1;
    opts_.merge_threshold = 0.3;
    table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  }

  void GrowThenShrink(uint64_t keys) {
    for (uint64_t k = 1; k <= keys; ++k) {
      ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
    }
    for (uint64_t k = 1; k <= keys; ++k) {
      ASSERT_EQ(table_->Delete(k), OpStatus::kOk) << "key " << k;
    }
  }

  void CrashAndReopen() {
    epochs_.DiscardAll();
    table_.reset();
    pool_->CloseDirty();
    pool_.reset();
    pool_ = pmem::PmPool::Open(file_->path());
    ASSERT_NE(pool_, nullptr);
    table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  DashOptions opts_;
  std::unique_ptr<DashEH<>> table_;
};

TEST_F(MergeTest, ExplicitMergeCombinesBuddies) {
  // Grow to at least 4 segments, then empty the table and merge a pair.
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  for (uint64_t k = 101; k <= 2000; ++k) {
    ASSERT_EQ(table_->Delete(k), OpStatus::kOk);
  }
  const uint64_t segments_before = table_->Stats().segments;
  ASSERT_GT(segments_before, 2u);
  bool merged = false;
  for (uint64_t probe = 0; probe < 64 && !merged; ++probe) {
    merged = table_->MergeForTest(util::HashInt64(probe * 977 + 1));
  }
  ASSERT_TRUE(merged);
  EXPECT_EQ(table_->Stats().segments, segments_before - 1);
  // The surviving keys are all still there.
  uint64_t value;
  for (uint64_t k = 1; k <= 100; ++k) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k);
  }
  EXPECT_EQ(table_->Size(), 100u);
}

TEST_F(MergeTest, DeleteDrivenMergeShrinksTable) {
  for (uint64_t k = 1; k <= 30000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  const uint64_t peak_segments = table_->Stats().segments;
  for (uint64_t k = 1; k <= 30000; ++k) {
    ASSERT_EQ(table_->Delete(k), OpStatus::kOk) << "key " << k;
  }
  // With merge_threshold = 0.3, sampled merges reclaim a good share of the
  // segments on the way down (full collapse would need repeated passes —
  // buddies must reach equal depth first).
  EXPECT_LT(table_->Stats().segments, peak_segments * 2 / 3);
  EXPECT_EQ(table_->Size(), 0u);
  // Table remains fully functional.
  for (uint64_t k = 1; k <= 10000; ++k) {
    ASSERT_EQ(table_->Insert(k, k * 2), OpStatus::kOk);
  }
  uint64_t value;
  for (uint64_t k = 1; k <= 10000; ++k) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk);
    ASSERT_EQ(value, k * 2);
  }
}

TEST_F(MergeTest, DirectoryHalvesWhenAllPairsRedundant) {
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  const uint64_t depth_grown = table_->global_depth();
  ASSERT_GT(depth_grown, 1u);
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Delete(k), OpStatus::kOk);
  }
  // Push remaining merges explicitly until no more are possible.
  for (int round = 0; round < 64; ++round) {
    bool any = false;
    for (uint64_t probe = 0; probe < 256; ++probe) {
      any |= table_->MergeForTest(util::HashInt64(probe * 7919 + round));
    }
    if (!any) break;
  }
  EXPECT_LT(table_->global_depth(), depth_grown)
      << "directory must have halved after mass deletion";
}

TEST_F(MergeTest, MergePreservesConcurrentlyLiveKeys) {
  // Keep every 100th key; merge; verify.
  std::set<uint64_t> kept;
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  for (uint64_t k = 1; k <= 20000; ++k) {
    if (k % 100 == 0) {
      kept.insert(k);
    } else {
      ASSERT_EQ(table_->Delete(k), OpStatus::kOk);
    }
  }
  for (int i = 0; i < 200; ++i) {
    table_->MergeForTest(util::HashInt64(i * 31 + 7));
  }
  uint64_t value;
  for (uint64_t k : kept) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k);
  }
  EXPECT_EQ(table_->Size(), kept.size());
}

// Crash injection at each merge boundary: committed records survive, the
// table converges, nothing leaks (the right sibling is reachable from the
// left's side-link or the retire buffer at every point).
class MergeCrashTest : public MergeTest,
                       public ::testing::WithParamInterface<const char*> {};

TEST_P(MergeCrashTest, MergeCrashIsRecoverable) {
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  std::set<uint64_t> kept;
  for (uint64_t k = 1; k <= 20000; ++k) {
    if (k % 50 == 0) {
      kept.insert(k);
    } else {
      ASSERT_EQ(table_->Delete(k), OpStatus::kOk);
    }
  }
  ASSERT_TRUE(pmem::CrashPointArm(GetParam()));
  bool crashed = false;
  for (int i = 0; i < 400 && !crashed; ++i) {
    try {
      table_->MergeForTest(util::HashInt64(i * 131 + 3));
    } catch (const pmem::CrashInjected&) {
      crashed = true;
    }
  }
  pmem::CrashPointDisarm();
  ASSERT_TRUE(crashed) << "crash point " << GetParam() << " never reached";
  CrashAndReopen();

  uint64_t value;
  for (uint64_t k : kept) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk)
        << "key " << k << " lost at merge crash point " << GetParam();
    ASSERT_EQ(value, k);
  }
  EXPECT_EQ(table_->Size(), kept.size()) << "duplicates survived recovery";
  // The table keeps working (inserts may re-split merged segments).
  for (uint64_t k = 100000; k < 105000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MergeCrashPoints, MergeCrashTest,
    ::testing::Values("eh_merge_after_mark", "eh_merge_after_drain",
                      "eh_merge_after_commit_left", "eh_merge_after_dir",
                      "eh_merge_after_retire", "eh_halve_after_commit"));

}  // namespace
}  // namespace dash
