// ShardedStore tests: routing stability, scatter/regroup/gather batch
// execution, aggregated stats, persistence across reopen, and concurrent
// mixed batches from multiple threads against 4 shards.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <fstream>

#include "api/sharded_store.h"
#include "pmem/crash_point.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash::api {
namespace {

using test::SmallStoreOptions;
using test::TempShardPaths;

TEST(ShardedStoreTest, SingleOpsRouteAndRoundTrip) {
  TempShardPaths paths("store_basic", 4);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->shard_count(), 4u);

  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(store->Insert(k, k * 7), Status::kOk) << "key " << k;
  }
  uint64_t value = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(store->Search(k, &value), Status::kOk) << "key " << k;
    ASSERT_EQ(value, k * 7);
  }
  EXPECT_EQ(store->Insert(5, 1), Status::kExists);
  EXPECT_EQ(store->Update(5, 500), Status::kOk);
  ASSERT_EQ(store->Search(5, &value), Status::kOk);
  EXPECT_EQ(value, 500u);
  EXPECT_EQ(store->Delete(5), Status::kOk);
  EXPECT_EQ(store->Delete(5), Status::kNotFound);
  EXPECT_EQ(store->Insert(0, 1), Status::kInvalidArgument);

  // Every shard must have received a fair share of a uniform keyspace.
  const ShardedStats stats = store->Stats();
  EXPECT_EQ(stats.shard_count, 4u);
  EXPECT_EQ(stats.totals.records, kKeys - 1);
  EXPECT_GT(stats.totals.bytes_used, 0u);
  for (size_t s = 0; s < store->shard_count(); ++s) {
    const uint64_t records = store->shard(s)->Stats().records;
    EXPECT_GT(records, kKeys / 8) << "shard " << s << " starved";
  }
  EXPECT_GE(stats.max_shard_load_factor, stats.min_shard_load_factor);
  EXPECT_GT(stats.min_shard_load_factor, 0.0);

  store->CloseClean();
}

TEST(ShardedStoreTest, RoutingIsStableAcrossReopen) {
  TempShardPaths paths("store_reopen", 2);
  constexpr uint64_t kKeys = 5000;
  {
    auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
    ASSERT_NE(store, nullptr);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(store->Insert(k, k + 1), Status::kOk);
    }
    store->CloseClean();
  }
  {
    auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
    ASSERT_NE(store, nullptr);
    uint64_t value = 0;
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(store->Search(k, &value), Status::kOk) << "key " << k;
      ASSERT_EQ(value, k + 1);
    }
    EXPECT_EQ(store->Stats().totals.records, kKeys);
    store->CloseClean();
  }
}

TEST(ShardedStoreTest, MultiExecuteMatchesModel) {
  TempShardPaths paths("store_mexec", 4);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
  ASSERT_NE(store, nullptr);

  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(11);
  constexpr uint64_t kKeySpace = 10000;
  for (int round = 0; round < 40; ++round) {
    constexpr size_t kN = 300;
    std::vector<Op> ops;
    std::map<uint64_t, bool> used;
    while (ops.size() < kN) {
      const uint64_t key = rng.NextBounded(kKeySpace) + 1;
      if (used.count(key)) continue;
      used[key] = true;
      switch (rng.NextBounded(4)) {
        case 0: ops.push_back(Op::Search(key)); break;
        case 1: ops.push_back(Op::Insert(key, rng.Next())); break;
        case 2: ops.push_back(Op::Update(key, rng.Next())); break;
        default: ops.push_back(Op::Delete(key)); break;
      }
    }
    std::vector<Status> statuses(kN);
    store->MultiExecute(ops.data(), kN, statuses.data());
    for (size_t i = 0; i < kN; ++i) {
      Status expected = Status::kInternal;
      switch (ops[i].type) {
        case OpType::kSearch: {
          const auto it = model.find(ops[i].key);
          expected = it == model.end() ? Status::kNotFound : Status::kOk;
          if (it != model.end()) {
            ASSERT_EQ(ops[i].value, it->second) << "key " << ops[i].key;
          }
          break;
        }
        case OpType::kInsert:
          expected = model.emplace(ops[i].key, ops[i].value).second
                         ? Status::kOk
                         : Status::kExists;
          break;
        case OpType::kUpdate: {
          const auto it = model.find(ops[i].key);
          expected = it == model.end() ? Status::kNotFound : Status::kOk;
          if (it != model.end()) it->second = ops[i].value;
          break;
        }
        case OpType::kDelete:
          expected = model.erase(ops[i].key) == 1 ? Status::kOk
                                                  : Status::kNotFound;
          break;
      }
      ASSERT_EQ(statuses[i], expected)
          << "round " << round << " slot " << i << " key " << ops[i].key;
    }
  }
  EXPECT_EQ(store->Stats().totals.records, model.size());
  store->CloseClean();
}

// The hybrid DRAM-PM tier behind the sharded facade: mixed batches match
// the model, and a reopen (which discards every shard's DRAM index and
// rebuilds it from the per-thread PM logs) serves the same contents.
TEST(ShardedStoreTest, HybridKindMatchesModelAcrossReopen) {
  TempShardPaths paths("store_hybrid", 4);
  ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 4);
  options.kind = IndexKind::kHybrid;
  std::map<uint64_t, uint64_t> model;
  {
    auto store = ShardedStore::Open(options);
    ASSERT_NE(store, nullptr);
    util::Xoshiro256 rng(23);
    constexpr uint64_t kKeySpace = 8000;
    for (int round = 0; round < 30; ++round) {
      constexpr size_t kN = 200;
      std::vector<Op> ops;
      std::map<uint64_t, bool> used;
      while (ops.size() < kN) {
        const uint64_t key = rng.NextBounded(kKeySpace) + 1;
        if (used.count(key)) continue;
        used[key] = true;
        switch (rng.NextBounded(4)) {
          case 0: ops.push_back(Op::Search(key)); break;
          case 1: ops.push_back(Op::Insert(key, rng.Next())); break;
          case 2: ops.push_back(Op::Update(key, rng.Next())); break;
          default: ops.push_back(Op::Delete(key)); break;
        }
      }
      std::vector<Status> statuses(kN);
      store->MultiExecute(ops.data(), kN, statuses.data());
      for (size_t i = 0; i < kN; ++i) {
        Status expected = Status::kInternal;
        switch (ops[i].type) {
          case OpType::kSearch: {
            const auto it = model.find(ops[i].key);
            expected = it == model.end() ? Status::kNotFound : Status::kOk;
            if (it != model.end()) {
              ASSERT_EQ(ops[i].value, it->second) << "key " << ops[i].key;
            }
            break;
          }
          case OpType::kInsert:
            expected = model.emplace(ops[i].key, ops[i].value).second
                           ? Status::kOk
                           : Status::kExists;
            break;
          case OpType::kUpdate: {
            const auto it = model.find(ops[i].key);
            expected = it == model.end() ? Status::kNotFound : Status::kOk;
            if (it != model.end()) it->second = ops[i].value;
            break;
          }
          case OpType::kDelete:
            expected = model.erase(ops[i].key) == 1 ? Status::kOk
                                                    : Status::kNotFound;
            break;
        }
        ASSERT_EQ(statuses[i], expected)
            << "round " << round << " slot " << i << " key " << ops[i].key;
      }
    }
    EXPECT_EQ(store->Stats().totals.records, model.size());
    store->CloseClean();
  }
  {
    auto store = ShardedStore::Open(options);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->Stats().totals.records, model.size());
    uint64_t value = 0;
    for (const auto& [key, expected] : model) {
      ASSERT_EQ(store->Search(key, &value), Status::kOk) << "key " << key;
      ASSERT_EQ(value, expected) << "key " << key;
    }
    store->CloseClean();
  }
}

// Homogeneous Multi* facade entry points: scatter by key, per-shard
// pipeline dispatch, gather in caller order. Batch sizes straddle the
// stack/heap scratch boundary (256).
TEST(ShardedStoreTest, HomogeneousMultiOpsMatchSingleOps) {
  TempShardPaths paths("store_multi", 4);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
  ASSERT_NE(store, nullptr);

  for (const size_t n : {5ul, 64ul, 300ul}) {
    std::vector<uint64_t> keys(n), values(n), got(n);
    std::vector<Status> statuses(n);
    const uint64_t base = n * 100000;
    for (size_t i = 0; i < n; ++i) {
      keys[i] = base + i + 1;
      values[i] = i + 7;
    }
    store->MultiInsert(keys.data(), values.data(), n, statuses.data());
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(statuses[i], Status::kOk);
    store->MultiInsert(keys.data(), values.data(), n, statuses.data());
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(statuses[i], Status::kExists);

    store->MultiSearch(keys.data(), n, got.data(), statuses.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(statuses[i], Status::kOk) << "key " << keys[i];
      ASSERT_EQ(got[i], values[i]);
    }

    for (size_t i = 0; i < n; ++i) values[i] = i + 1000;
    store->MultiUpdate(keys.data(), values.data(), n, statuses.data());
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(statuses[i], Status::kOk);
    store->MultiSearch(keys.data(), n, got.data(), statuses.data());
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(got[i], values[i]);

    store->MultiDelete(keys.data(), n, statuses.data());
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(statuses[i], Status::kOk);
    store->MultiDelete(keys.data(), n, statuses.data());
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(statuses[i], Status::kNotFound);
  }

  // Reserved key inside a batch: flagged, neighbors still execute.
  uint64_t keys[3] = {11, 0, 13};
  uint64_t values[3] = {1, 2, 3};
  Status statuses[3];
  store->MultiInsert(keys, values, 3, statuses);
  EXPECT_EQ(statuses[0], Status::kOk);
  EXPECT_EQ(statuses[1], Status::kInvalidArgument);
  EXPECT_EQ(statuses[2], Status::kOk);

  EXPECT_EQ(store->Stats().totals.records, 2u);
  store->CloseClean();
}

// Multiple threads issue mixed batches against 4 shards over disjoint key
// ranges; a reader thread hammers the full range concurrently.
TEST(ShardedStoreTest, ConcurrentMixedBatches) {
  TempShardPaths paths("store_conc", 4);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
  ASSERT_NE(store, nullptr);

  const int writers = 4;
  constexpr uint64_t kPerThread = 8000;
  constexpr size_t kBatch = 64;
  std::atomic<uint64_t> wrong_values{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t base = static_cast<uint64_t>(t) * kPerThread;
      Op ops[kBatch];
      Status statuses[kBatch];
      // Insert the range in mixed batches that also re-search earlier keys.
      for (uint64_t k = 1; k <= kPerThread; k += kBatch / 2) {
        size_t n = 0;
        for (uint64_t i = k; i < k + kBatch / 2 && i <= kPerThread; ++i) {
          ops[n++] = Op::Insert(base + i, base + i + 1);
        }
        const size_t inserts = n;
        for (uint64_t i = k; i >= 2 && n < kBatch; --i) {
          ops[n++] = Op::Search(base + i - 1);
        }
        store->MultiExecute(ops, n, statuses);
        for (size_t i = 0; i < inserts; ++i) {
          if (!IsOk(statuses[i])) wrong_values.fetch_add(1);
        }
        for (size_t i = inserts; i < n; ++i) {
          if (IsOk(statuses[i]) &&
              ops[i].value != ops[i].key + 1) {
            wrong_values.fetch_add(1);
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    util::Xoshiro256 rng(5);
    Op ops[kBatch];
    Status statuses[kBatch];
    for (int round = 0; round < 300; ++round) {
      for (size_t i = 0; i < kBatch; ++i) {
        ops[i] = Op::Search(
            rng.NextBounded(static_cast<uint64_t>(writers) * kPerThread) + 1);
      }
      store->MultiExecute(ops, kBatch, statuses);
      for (size_t i = 0; i < kBatch; ++i) {
        if (IsOk(statuses[i]) && ops[i].value != ops[i].key + 1) {
          wrong_values.fetch_add(1);
        }
      }
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(wrong_values.load(), 0u);
  EXPECT_EQ(store->Stats().totals.records,
            static_cast<uint64_t>(writers) * kPerThread);
  uint64_t value = 0;
  for (uint64_t k = 1; k <= static_cast<uint64_t>(writers) * kPerThread;
       ++k) {
    ASSERT_EQ(store->Search(k, &value), Status::kOk) << "key " << k;
    ASSERT_EQ(value, k + 1);
  }
  store->CloseClean();
}

// Regression (issue: stats during concurrent batches): Stats() must be
// routed through the shard queues, so a snapshot taken right after a pile
// of async submissions — without waiting on their futures — still counts
// every record of every batch enqueued before it (per-shard FIFO), and
// never reads a shard mid-batch.
TEST(ShardedStoreTest, StatsSnapshotsQueuedBatches) {
  TempShardPaths paths("store_stats", 4);
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->async_enabled());

  constexpr size_t kBatches = 16;
  constexpr size_t kBatch = 256;
  std::vector<std::vector<Op>> ops(kBatches);
  std::vector<std::vector<Status>> statuses(kBatches);
  std::vector<BatchFuture> futures(kBatches);
  uint64_t next_key = 1;
  for (size_t b = 0; b < kBatches; ++b) {
    ops[b].reserve(kBatch);
    statuses[b].resize(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      ops[b].push_back(Op::Insert(next_key++, 1));
    }
    futures[b] =
        store->SubmitExecute(ops[b].data(), kBatch, statuses[b].data());
    ASSERT_EQ(futures[b].submit_status(), Status::kOk);
  }

  // No future has been waited on: the snapshot request queues behind all
  // of the insert batches on every shard.
  const ShardedStats stats = store->Stats();
  EXPECT_EQ(stats.totals.records, kBatches * kBatch);

  for (auto& future : futures) future.Wait();
  for (size_t b = 0; b < kBatches; ++b) {
    for (size_t i = 0; i < kBatch; ++i) {
      ASSERT_EQ(statuses[b][i], Status::kOk);
    }
  }
  store->CloseClean();
  // Stats after a clean close is guarded, not undefined.
  EXPECT_EQ(store->Stats().shard_count, 0u);
}

// The sequential scatter/execute/gather path (async.workers = false) must
// stay semantically identical to the executor-backed wrappers.
TEST(ShardedStoreTest, InlineModeMatchesModel) {
  TempShardPaths paths("store_inline", 4);
  ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 4);
  options.async.workers = false;
  auto store = ShardedStore::Open(options);
  ASSERT_NE(store, nullptr);
  ASSERT_FALSE(store->async_enabled());

  constexpr size_t kN = 300;
  std::vector<uint64_t> keys(kN), values(kN), got(kN);
  std::vector<Status> statuses(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i + 1;
    values[i] = i + 42;
  }
  store->MultiInsert(keys.data(), values.data(), kN, statuses.data());
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(statuses[i], Status::kOk);
  store->MultiSearch(keys.data(), kN, got.data(), statuses.data());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(statuses[i], Status::kOk);
    ASSERT_EQ(got[i], values[i]);
  }

  // Submit* on an inline store executes on the caller thread; the future
  // is born ready.
  std::vector<Op> ops;
  for (size_t i = 0; i < kN; ++i) ops.push_back(Op::Search(keys[i]));
  BatchFuture future = store->SubmitExecute(ops.data(), kN, statuses.data());
  EXPECT_TRUE(future.Ready());
  EXPECT_EQ(future.pending_shards(), 0u);
  future.Wait();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(statuses[i], Status::kOk);
    ASSERT_EQ(ops[i].value, values[i]);
  }

  store->CloseClean();
  // The inline wrappers reject after close, like the executor path.
  store->MultiDelete(keys.data(), kN, statuses.data());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(statuses[i], Status::kInvalidArgument);
  }
}

TEST(ShardedStoreTest, RejectsBadOptions) {
  EXPECT_EQ(ShardedStore::Open({}), nullptr);  // empty prefix
  TempShardPaths paths("store_zero", 1);
  ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 0);
  EXPECT_EQ(ShardedStore::Open(options), nullptr);
}

// Reopening with a different shard count or kind must fail loudly (the
// manifest check) — a silent mismatch would misroute every key.
TEST(ShardedStoreTest, RejectsMismatchedReopen) {
  TempShardPaths paths("store_manifest", 4);
  {
    auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
    ASSERT_NE(store, nullptr);
    ASSERT_EQ(store->Insert(1, 1), Status::kOk);
    store->CloseClean();
  }
  EXPECT_EQ(ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2)),
            nullptr);
  ShardedStoreOptions wrong_kind = SmallStoreOptions(paths.prefix(), 4);
  wrong_kind.kind = IndexKind::kCCEH;
  EXPECT_EQ(ShardedStore::Open(wrong_kind), nullptr);
  // The matching configuration still opens.
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
  ASSERT_NE(store, nullptr);
  uint64_t value = 0;
  EXPECT_EQ(store->Search(1, &value), Status::kOk);
  store->CloseClean();
}

// ---- fault isolation: quarantine, RecoverShard, manifest v2 ----

void CorruptPoolHeader(const std::string& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  const char garbage[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
  f.write(garbage, sizeof garbage);  // clobbers the pool magic
}

// One shard with a wrecked pool header must not fail the store: it is
// quarantined (kUnavailable on every op routed to it) while the other
// shard keeps serving, Stats reports the degradation, and RecoverShard
// re-admits the shard once the operator clears the wreck.
TEST(ShardedStoreTest, CorruptShardIsQuarantinedNotFatal) {
  TempShardPaths paths("store_quar", 2);
  constexpr uint64_t kKeys = 4000;
  {
    auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
    ASSERT_NE(store, nullptr);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(store->Insert(k, k * 3), Status::kOk);
    }
    store->CloseClean();
  }
  CorruptPoolHeader(paths.prefix() + ".shard1");
  if (::testing::Test::HasFatalFailure()) return;

  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
  ASSERT_NE(store, nullptr) << "one bad shard must not fail the store";
  EXPECT_FALSE(store->IsQuarantined(0));
  EXPECT_TRUE(store->IsQuarantined(1));
  EXPECT_EQ(store->QuarantinedCount(), 1u);
  const RecoveryReport& report = store->recovery_report();
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], 1u);
  EXPECT_EQ(report.shard_ms.size(), 2u);

  // Single ops: healthy shard serves its keys, quarantined one refuses.
  uint64_t value = 0;
  size_t served = 0, refused = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    const Status st = store->Search(k, &value);
    if (store->ShardOf(k) == 1) {
      ASSERT_EQ(st, Status::kUnavailable) << "key " << k;
      ++refused;
    } else {
      ASSERT_EQ(st, Status::kOk) << "key " << k;
      ASSERT_EQ(value, k * 3);
      ++served;
    }
  }
  EXPECT_GT(served, 0u);
  EXPECT_GT(refused, 0u);

  // Batches spanning both shards: quarantined slots complete with
  // kUnavailable, their neighbors still execute.
  constexpr size_t kN = 256;
  uint64_t keys[kN], got[kN];
  Status statuses[kN];
  for (size_t i = 0; i < kN; ++i) keys[i] = i + 1;
  store->MultiSearch(keys, kN, got, statuses);
  for (size_t i = 0; i < kN; ++i) {
    if (store->ShardOf(keys[i]) == 1) {
      ASSERT_EQ(statuses[i], Status::kUnavailable);
    } else {
      ASSERT_EQ(statuses[i], Status::kOk);
      ASSERT_EQ(got[i], keys[i] * 3);
    }
  }

  const ShardedStats stats = store->Stats();
  EXPECT_EQ(stats.shard_count, 2u);
  EXPECT_EQ(stats.quarantined_count, 1u);
  ASSERT_EQ(stats.quarantined_shards.size(), 1u);
  EXPECT_EQ(stats.quarantined_shards[0], 1u);
  EXPECT_LT(stats.totals.records, kKeys);  // only the healthy shard counts

  // Recovery with the file still corrupt keeps the shard quarantined;
  // deleting the wreck and retrying re-admits it empty.
  EXPECT_EQ(store->RecoverShard(1), Status::kUnavailable);
  EXPECT_TRUE(store->IsQuarantined(1));
  ASSERT_EQ(std::remove((paths.prefix() + ".shard1").c_str()), 0);
  EXPECT_EQ(store->RecoverShard(1), Status::kOk);
  EXPECT_FALSE(store->IsQuarantined(1));
  EXPECT_EQ(store->RecoverShard(1), Status::kOk);  // no-op on healthy
  for (uint64_t k = 1; k <= kKeys; ++k) {
    const Status st = store->Search(k, &value);
    if (store->ShardOf(k) == 1) {
      ASSERT_EQ(st, Status::kNotFound);  // data went with the file
    } else {
      ASSERT_EQ(st, Status::kOk);
    }
  }
  for (uint64_t k = kKeys + 1; k <= kKeys + 500; ++k) {
    ASSERT_EQ(store->Insert(k, k), Status::kOk);
  }
  EXPECT_EQ(store->Stats().quarantined_count, 0u);
  EXPECT_EQ(store->RecoverShard(99), Status::kInvalidArgument);
  store->CloseClean();
}

// Swapped .shard files carry the wrong identity tag: both shards are
// quarantined instead of silently serving misrouted keys. Swapping back
// and re-admitting recovers all data.
TEST(ShardedStoreTest, SwappedShardFilesAreQuarantined) {
  TempShardPaths paths("store_swap", 2);
  constexpr uint64_t kKeys = 3000;
  {
    auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
    ASSERT_NE(store, nullptr);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(store->Insert(k, k + 9), Status::kOk);
    }
    store->CloseClean();
  }
  const std::string s0 = paths.prefix() + ".shard0";
  const std::string s1 = paths.prefix() + ".shard1";
  const std::string tmp = paths.prefix() + ".swaptmp";
  auto swap_files = [&] {
    ASSERT_EQ(std::rename(s0.c_str(), tmp.c_str()), 0);
    ASSERT_EQ(std::rename(s1.c_str(), s0.c_str()), 0);
    ASSERT_EQ(std::rename(tmp.c_str(), s1.c_str()), 0);
  };
  swap_files();
  if (::testing::Test::HasFatalFailure()) return;

  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->QuarantinedCount(), 2u);
  uint64_t value = 0;
  EXPECT_EQ(store->Search(1, &value), Status::kUnavailable);

  swap_files();
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(store->RecoverShard(0), Status::kOk);
  EXPECT_EQ(store->RecoverShard(1), Status::kOk);
  EXPECT_EQ(store->QuarantinedCount(), 0u);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(store->Search(k, &value), Status::kOk) << "key " << k;
    ASSERT_EQ(value, k + 9);
  }
  store->CloseClean();
}

// With quarantine disabled, any shard failure fails the whole open.
TEST(ShardedStoreTest, QuarantineDisabledFailsOpen) {
  TempShardPaths paths("store_noquar", 2);
  {
    auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
    ASSERT_NE(store, nullptr);
    ASSERT_EQ(store->Insert(1, 1), Status::kOk);
    store->CloseClean();
  }
  CorruptPoolHeader(paths.prefix() + ".shard1");
  if (::testing::Test::HasFatalFailure()) return;
  ShardedStoreOptions strict = SmallStoreOptions(paths.prefix(), 2);
  strict.quarantine_failed_shards = false;
  EXPECT_EQ(ShardedStore::Open(strict), nullptr);
  // The default policy still opens the same on-disk state, degraded.
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->QuarantinedCount(), 1u);
  store->CloseClean();
}

// A torn v2 manifest (checksum mismatch) refuses to guess the layout; a
// legacy v1 manifest is accepted and upgraded in place; a stray
// .manifest.tmp from a crashed rewrite is discarded.
TEST(ShardedStoreTest, TornManifestRejectsV1Upgrades) {
  TempShardPaths paths("store_mani2", 2);
  {
    auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
    ASSERT_NE(store, nullptr);
    ASSERT_EQ(store->Insert(1, 11), Status::kOk);
    store->CloseClean();
  }
  const std::string manifest = paths.prefix() + ".manifest";
  {
    std::ofstream out(manifest, std::ios::trunc);
    out << "v2 2 dash-eh 1 deadbeef\n";  // plausible fields, bad checksum
  }
  EXPECT_EQ(ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2)),
            nullptr);
  {
    std::ofstream out(manifest, std::ios::trunc);
    out << "2 dash-eh\n";  // legacy v1
    std::ofstream stray(manifest + ".tmp", std::ios::trunc);
    stray << "half-written rewrite\n";
  }
  auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
  ASSERT_NE(store, nullptr);
  uint64_t value = 0;
  EXPECT_EQ(store->Search(1, &value), Status::kOk);
  EXPECT_EQ(value, 11u);
  store->CloseClean();
  std::string tag;
  std::ifstream in(manifest);
  in >> tag;
  EXPECT_EQ(tag, "v2") << "v1 manifest was not upgraded";
  EXPECT_FALSE(std::ifstream(manifest + ".tmp").good());
  // The upgraded manifest round-trips.
  store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 2));
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->Search(1, &value), Status::kOk);
  store->CloseClean();
}

// Crashes around the manifest rename leave either no manifest (retry
// recreates the store) or a complete one (retry opens it) — never a torn
// configuration.
TEST(ShardedStoreTest, ManifestWriteCrashLeavesRecoverableState) {
  {
    TempShardPaths paths("store_mcrash_pre", 2);
    ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 2);
    ASSERT_TRUE(pmem::CrashPointArm("manifest_before_rename"));
    EXPECT_THROW(ShardedStore::Open(options), pmem::CrashInjected);
    pmem::CrashPointDisarm();
    auto store = ShardedStore::Open(options);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->Insert(1, 5), Status::kOk);
    store->CloseClean();
  }
  {
    TempShardPaths paths("store_mcrash_post", 2);
    ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 2);
    ASSERT_TRUE(pmem::CrashPointArm("manifest_after_rename"));
    EXPECT_THROW(ShardedStore::Open(options), pmem::CrashInjected);
    pmem::CrashPointDisarm();
    auto store = ShardedStore::Open(options);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->Insert(1, 6), Status::kOk);
    store->CloseClean();
  }
}

// The recovery report covers every shard for both serial and parallel
// opens, and the shard data survives either path identically.
TEST(ShardedStoreTest, RecoveryReportCoversAllShards) {
  TempShardPaths paths("store_rrep", 4);
  constexpr uint64_t kKeys = 2000;
  {
    auto store = ShardedStore::Open(SmallStoreOptions(paths.prefix(), 4));
    ASSERT_NE(store, nullptr);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(store->Insert(k, k), Status::kOk);
    }
    store->CloseClean();
  }
  for (const size_t threads : {1ul, 4ul}) {
    ShardedStoreOptions options = SmallStoreOptions(paths.prefix(), 4);
    options.recovery_threads = threads;
    auto store = ShardedStore::Open(options);
    ASSERT_NE(store, nullptr);
    const RecoveryReport& report = store->recovery_report();
    EXPECT_EQ(report.threads, threads);
    ASSERT_EQ(report.shard_ms.size(), 4u);
    ASSERT_EQ(report.shard_recovered.size(), 4u);
    EXPECT_TRUE(report.quarantined.empty());
    for (size_t s = 0; s < 4; ++s) {
      EXPECT_GE(report.shard_ms[s], 0.0);
      EXPECT_FALSE(report.shard_recovered[s]) << "clean close, shard " << s;
    }
    uint64_t value = 0;
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(store->Search(k, &value), Status::kOk);
      ASSERT_EQ(value, k);
    }
    store->CloseClean();
  }
}

}  // namespace
}  // namespace dash::api
