#include "pmem/allocator.h"

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pmem/crash_point.h"
#include "pmem/pool.h"
#include "test_util.h"

namespace dash::pmem {
namespace {

using test::TempPoolFile;

TEST(AllocatorTest, AllocReturnsZeroedAlignedBlocks) {
  TempPoolFile file("alloc_basic");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  for (size_t size : {1ul, 64ul, 100ul, 4096ul, 16384ul, 100000ul}) {
    auto* p = static_cast<unsigned char*>(pool->allocator().Alloc(size));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kAllocAlignment, 0u);
    for (size_t i = 0; i < size; ++i) ASSERT_EQ(p[i], 0u);
    std::memset(p, 0xAB, size);  // dirty it for reuse checks
  }
  pool->CloseClean();
}

TEST(AllocatorTest, FreeThenAllocReusesBlock) {
  TempPoolFile file("alloc_reuse");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  void* a = pool->allocator().Alloc(300);
  pool->allocator().Free(a);
  void* b = pool->allocator().Alloc(300);
  EXPECT_EQ(a, b) << "same size class must reuse the freed block";
  // And the reused block must be zeroed again.
  const auto* bytes = static_cast<const unsigned char*>(b);
  for (size_t i = 0; i < 300; ++i) ASSERT_EQ(bytes[i], 0u);
  pool->CloseClean();
}

TEST(AllocatorTest, DistinctSizeClassesDoNotMix) {
  TempPoolFile file("alloc_classes");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  void* small = pool->allocator().Alloc(64);
  pool->allocator().Free(small);
  void* large = pool->allocator().Alloc(128);
  EXPECT_NE(small, large);
  pool->CloseClean();
}

TEST(AllocatorTest, LargeExactSizeClasses) {
  TempPoolFile file("alloc_large");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  void* a = pool->allocator().Alloc(16 * 1024 + 512);  // segment-ish size
  ASSERT_NE(a, nullptr);
  pool->allocator().Free(a);
  void* b = pool->allocator().Alloc(16 * 1024 + 512);
  EXPECT_EQ(a, b);
  pool->CloseClean();
}

TEST(AllocatorTest, OutOfMemoryReturnsNull) {
  TempPoolFile file("alloc_oom");
  auto pool = test::CreatePool(file, /*size=*/4ull << 20);
  ASSERT_NE(pool, nullptr);
  // Exhaust the heap.
  while (pool->allocator().Alloc(256 * 1024) != nullptr) {
  }
  EXPECT_EQ(pool->allocator().Alloc(256 * 1024), nullptr);
  pool->CloseClean();
}

TEST(AllocatorTest, ReserveCancelReturnsBlock) {
  TempPoolFile file("alloc_cancel");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  auto r = pool->allocator().Reserve(1000);
  ASSERT_TRUE(r.valid());
  pool->allocator().Cancel(r);
  auto r2 = pool->allocator().Reserve(1000);
  EXPECT_EQ(r2.ptr, r.ptr);
  pool->allocator().Cancel(r2);
  pool->CloseClean();
}

TEST(AllocatorTest, ActivatePublishesPointer) {
  TempPoolFile file("alloc_activate");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  auto* dest = static_cast<uint64_t*>(pool->root());
  auto r = pool->allocator().Reserve(512);
  ASSERT_TRUE(r.valid());
  pool->allocator().Activate(r, dest);
  EXPECT_EQ(*dest, reinterpret_cast<uint64_t>(r.ptr));
  pool->CloseClean();
}

// --- crash-safety: every reservation is reclaimed or confirmed on open ---

struct CrashCase {
  const char* point;
  bool expect_published;
};

class AllocatorCrashTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(AllocatorCrashTest, NoLeakAtAnyCrashPoint) {
  const CrashCase& c = GetParam();
  TempPoolFile file(std::string("alloc_crash_") + c.point);
  uint64_t heap_used_before = 0;
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    auto* dest = static_cast<uint64_t*>(pool->root());
    // Prime the size class so both pop and bump paths are exercised.
    void* primer = pool->allocator().Alloc(2048);
    pool->allocator().Free(primer);
    heap_used_before = pool->allocator().bytes_in_use();

    ASSERT_TRUE(CrashPointArm(c.point));
    bool crashed = false;
    try {
      auto r = pool->allocator().Reserve(2048);
      ASSERT_TRUE(r.valid());
      pool->allocator().Activate(r, dest);
    } catch (const CrashInjected&) {
      crashed = true;
    }
    CrashPointDisarm();
    ASSERT_TRUE(crashed) << "crash point " << c.point << " never hit";
    pool->CloseDirty();
  }
  auto pool = PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  const auto* dest = static_cast<const uint64_t*>(pool->root());
  if (c.expect_published) {
    EXPECT_NE(*dest, 0u) << "activation had committed";
  } else {
    // Block must be reusable: a fresh allocation of the same class gets it
    // without growing the heap.
    void* again = pool->allocator().Alloc(2048);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(pool->allocator().bytes_in_use(), heap_used_before)
        << "reclaimed block should satisfy the allocation without bump growth";
  }
  pool->CloseClean();
}

INSTANTIATE_TEST_SUITE_P(
    CrashPoints, AllocatorCrashTest,
    ::testing::Values(
        CrashCase{"alloc_after_slot_record_pop", false},
        CrashCase{"alloc_activate_before_publish", false},
        CrashCase{"alloc_activate_after_publish", true}));

TEST(AllocatorCrashTest2, BumpPathCrashDoesNotCorrupt) {
  // Crash right after the slot records a bump allocation, before the bump
  // pointer advances: recovery must treat the block as never allocated.
  TempPoolFile file("alloc_crash_bump");
  {
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    ASSERT_TRUE(CrashPointArm("alloc_after_slot_record_bump"));
    bool crashed = false;
    try {
      pool->allocator().Reserve(999);
    } catch (const CrashInjected&) {
      crashed = true;
    }
    CrashPointDisarm();
    ASSERT_TRUE(crashed);
    pool->CloseDirty();
  }
  auto pool = PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  // The allocator must still hand out sane blocks.
  void* a = pool->allocator().Alloc(999);
  void* b = pool->allocator().Alloc(999);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
  pool->CloseClean();
}

TEST(AllocatorConcurrencyTest, ParallelAllocFreeNoOverlap) {
  TempPoolFile file("alloc_mt");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<void*>> blocks(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        void* p = pool->allocator().Alloc(128);
        ASSERT_NE(p, nullptr);
        blocks[t].push_back(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<void*> all;
  for (const auto& v : blocks) {
    for (void* p : v) {
      EXPECT_TRUE(all.insert(p).second) << "duplicate allocation " << p;
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads) * kPerThread);
  pool->CloseClean();
}

}  // namespace
}  // namespace dash::pmem
