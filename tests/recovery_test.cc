// Dash instant-recovery tests (§4.8): constant-work open, lazy per-segment
// recovery, and crash injection at every SMO persistence boundary for both
// Dash-EH and Dash-LH.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "dash/dash_eh.h"
#include "dash/dash_lh.h"
#include "pmem/crash_point.h"
#include "test_util.h"

namespace dash {
namespace {

class EhRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>("eh_recovery");
    pool_ = test::CreatePool(*file_);
    ASSERT_NE(pool_, nullptr);
    opts_.buckets_per_segment = 16;
    opts_.stash_buckets = 2;
    table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  }

  // Simulates a power failure and re-opens the pool + table.
  void CrashAndReopen() {
    epochs_.DiscardAll();
    table_.reset();
    pool_->CloseDirty();
    pool_.reset();
    pool_ = pmem::PmPool::Open(file_->path());
    ASSERT_NE(pool_, nullptr);
    ASSERT_TRUE(pool_->recovered_from_crash());
    table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  }

  // Inserts keys [1, n]; returns the first key whose insert crashed (and
  // did not complete), or n+1 if no crash fired.
  uint64_t InsertUntilCrash(uint64_t n, const std::string& point) {
    EXPECT_TRUE(pmem::CrashPointArm(point));
    for (uint64_t k = 1; k <= n; ++k) {
      try {
        table_->Insert(k, k);
      } catch (const pmem::CrashInjected&) {
        pmem::CrashPointDisarm();
        return k;
      }
    }
    pmem::CrashPointDisarm();
    return n + 1;
  }

  void VerifyKeys(uint64_t upto, uint64_t maybe_missing) {
    uint64_t value = 0;
    for (uint64_t k = 1; k <= upto; ++k) {
      if (k == maybe_missing) continue;
      ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk)
          << "key " << k << " lost in crash";
      ASSERT_EQ(value, k);
    }
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  DashOptions opts_;
  std::unique_ptr<DashEH<>> table_;
};

TEST_F(EhRecoveryTest, CleanRestartNeedsNoRecovery) {
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  table_->CloseClean();
  table_.reset();
  pool_->CloseClean();
  pool_.reset();
  pool_ = pmem::PmPool::Open(file_->path());
  table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  VerifyKeys(1000, 0);
}

TEST_F(EhRecoveryTest, CrashWithoutSmoKeepsAllCommittedInserts) {
  for (uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  CrashAndReopen();
  VerifyKeys(2000, 0);
  // Table remains fully operational.
  for (uint64_t k = 2001; k <= 4000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  VerifyKeys(4000, 0);
}

TEST_F(EhRecoveryTest, HeldLocksAreClearedLazily) {
  for (uint64_t k = 1; k <= 500; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  // Leave a bucket lock held, as a crash mid-insert would.
  table_->SplitForTest(IntKeyPolicy::Hash(1));  // make several segments
  CrashAndReopen();
  // Every operation must succeed — lazy recovery resets the locks.
  VerifyKeys(500, 0);
  for (uint64_t k = 501; k <= 1000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
}

// Crash injection at each split boundary: no committed record may be lost,
// the interrupted key may be absent, and the table must work afterwards.
class EhSplitCrashTest : public EhRecoveryTest,
                         public ::testing::WithParamInterface<const char*> {};

TEST_P(EhSplitCrashTest, SplitCrashIsRecoverable) {
  const uint64_t crashed_key = InsertUntilCrash(60000, GetParam());
  ASSERT_LE(crashed_key, 60000u) << "crash point " << GetParam()
                                 << " never reached";
  CrashAndReopen();
  VerifyKeys(crashed_key - 1, 0);
  // The crashed key may or may not have committed; either way it must be
  // insertable/searchable now.
  uint64_t value;
  if (table_->Search(crashed_key, &value) == OpStatus::kNotFound) {
    ASSERT_EQ(table_->Insert(crashed_key, crashed_key), OpStatus::kOk);
  }
  // Table continues to grow correctly after recovery.
  for (uint64_t k = crashed_key + 1; k <= crashed_key + 5000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk) << "key " << k;
  }
  VerifyKeys(crashed_key + 5000, 0);
  // No duplicate records survived recovery.
  const DashTableStats stats = table_->Stats();
  EXPECT_EQ(stats.records, crashed_key + 5000);
}

INSTANTIATE_TEST_SUITE_P(
    SplitCrashPoints, EhSplitCrashTest,
    ::testing::Values("eh_split_after_mark", "eh_split_after_activate",
                      "eh_split_after_rehash", "eh_split_after_dir_update",
                      "eh_split_after_commit", "eh_double_before_commit",
                      "eh_double_after_commit", "minitx_after_commit_mark"));

TEST_F(EhRecoveryTest, CrashDuringDisplacementRemovesDuplicate) {
  // Arm the displacement crash point; drive inserts until it fires.
  ASSERT_TRUE(pmem::CrashPointArm("displace_after_insert"));
  uint64_t crashed_key = 0;
  for (uint64_t k = 1; k <= 60000 && crashed_key == 0; ++k) {
    try {
      table_->Insert(k, k);
    } catch (const pmem::CrashInjected&) {
      crashed_key = k;
    }
  }
  pmem::CrashPointDisarm();
  ASSERT_NE(crashed_key, 0u) << "displacement never happened";
  CrashAndReopen();
  VerifyKeys(crashed_key - 1, 0);
  // Dedup must leave exactly one copy of every key.
  uint64_t total = table_->Stats().records;
  uint64_t found = 0;
  uint64_t value;
  for (uint64_t k = 1; k <= crashed_key; ++k) {
    if (table_->Search(k, &value) == OpStatus::kOk) ++found;
  }
  EXPECT_EQ(found, total) << "duplicates survived recovery";
}

TEST_F(EhRecoveryTest, RepeatedCrashesConverge) {
  // Crash during a split, then crash again during the recovery of that
  // split, and verify the third incarnation is consistent.
  const uint64_t crashed_key = InsertUntilCrash(60000, "eh_split_after_rehash");
  ASSERT_LE(crashed_key, 60000u);

  epochs_.DiscardAll();
  table_.reset();
  pool_->CloseDirty();
  pool_.reset();
  pool_ = pmem::PmPool::Open(file_->path());
  ASSERT_NE(pool_, nullptr);
  table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);

  // Trigger lazy recovery and crash inside its roll-forward.
  ASSERT_TRUE(pmem::CrashPointArm("eh_split_after_dir_update"));
  uint64_t value;
  bool crashed_again = false;
  for (uint64_t k = 1; k < crashed_key && !crashed_again; ++k) {
    try {
      table_->Search(k, &value);
    } catch (const pmem::CrashInjected&) {
      crashed_again = true;
    }
  }
  pmem::CrashPointDisarm();
  // Whether or not the second crash fired (the roll-forward may not pass
  // that exact point), the third incarnation must be consistent.
  CrashAndReopen();
  VerifyKeys(crashed_key - 1, 0);
}

TEST_F(EhRecoveryTest, VersionWrapAroundForcesFullRecovery) {
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  // Crash-reopen 300 times to exercise the 1-byte version wrap (§4.8).
  for (int i = 0; i < 300; ++i) {
    epochs_.DiscardAll();
    table_.reset();
    pool_->CloseDirty();
    pool_.reset();
    pool_ = pmem::PmPool::Open(file_->path());
    ASSERT_NE(pool_, nullptr);
    table_ = std::make_unique<DashEH<>>(pool_.get(), &epochs_, opts_);
  }
  VerifyKeys(1000, 0);
  for (uint64_t k = 1001; k <= 1100; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
}

// ---- Dash-LH ----

class LhRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<test::TempPoolFile>("lh_recovery");
    pool_ = test::CreatePool(*file_);
    ASSERT_NE(pool_, nullptr);
    opts_.buckets_per_segment = 16;
    opts_.stash_buckets = 2;
    opts_.lh_base_segments = 4;
    opts_.lh_stride = 2;
    table_ = std::make_unique<DashLH<>>(pool_.get(), &epochs_, opts_);
  }

  void CrashAndReopen() {
    epochs_.DiscardAll();
    table_.reset();
    pool_->CloseDirty();
    pool_.reset();
    pool_ = pmem::PmPool::Open(file_->path());
    ASSERT_NE(pool_, nullptr);
    table_ = std::make_unique<DashLH<>>(pool_.get(), &epochs_, opts_);
  }

  std::unique_ptr<test::TempPoolFile> file_;
  std::unique_ptr<pmem::PmPool> pool_;
  epoch::EpochManager epochs_;
  DashOptions opts_;
  std::unique_ptr<DashLH<>> table_;
};

TEST_F(LhRecoveryTest, CrashWithoutSmoKeepsRecords) {
  for (uint64_t k = 1; k <= 3000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  CrashAndReopen();
  uint64_t value;
  for (uint64_t k = 1; k <= 3000; ++k) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
  }
}

class LhSplitCrashTest : public LhRecoveryTest,
                         public ::testing::WithParamInterface<const char*> {};

TEST_P(LhSplitCrashTest, ExpansionCrashIsRecoverable) {
  ASSERT_TRUE(pmem::CrashPointArm(GetParam()));
  uint64_t crashed_key = 0;
  for (uint64_t k = 1; k <= 80000 && crashed_key == 0; ++k) {
    try {
      ASSERT_NE(table_->Insert(k, k), OpStatus::kOutOfMemory);
    } catch (const pmem::CrashInjected&) {
      crashed_key = k;
    }
  }
  pmem::CrashPointDisarm();
  ASSERT_NE(crashed_key, 0u) << "crash point " << GetParam()
                             << " never reached";
  CrashAndReopen();
  uint64_t value;
  for (uint64_t k = 1; k < crashed_key; ++k) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk)
        << "key " << k << " lost (crash point " << GetParam() << ")";
    ASSERT_EQ(value, k);
  }
  if (table_->Search(crashed_key, &value) == OpStatus::kNotFound) {
    ASSERT_EQ(table_->Insert(crashed_key, crashed_key), OpStatus::kOk);
  }
  for (uint64_t k = crashed_key + 1; k <= crashed_key + 5000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  EXPECT_EQ(table_->Size(), crashed_key + 5000);
}

INSTANTIATE_TEST_SUITE_P(
    LhCrashPoints, LhSplitCrashTest,
    ::testing::Values("lh_expand_after_buddy", "lh_expand_after_advance",
                      "lh_split_after_mark", "lh_split_after_rehash",
                      "lh_split_after_commit", "lh_chain_after_publish",
                      "lh_after_buddy_publish"));

TEST_F(LhRecoveryTest, InstantOpenThenLazySegmentRecovery) {
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Insert(k, k), OpStatus::kOk);
  }
  CrashAndReopen();
  // All segments recover lazily on first touch; spot-check and then do a
  // full verification pass.
  uint64_t value;
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(table_->Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k);
  }
}

}  // namespace
}  // namespace dash
