// Crash-sweep harness over every table kind with torn-write simulation.
//
// Phase 1 (discover): run a deterministic insert workload under crash-point
// trace mode and collect the distinct CRASH_POINT markers it reaches —
// so a point added to any table or to the pmem layer is swept
// automatically, without this file enumerating names.
//
// Phase 2 (sweep): for every discovered point, replay the same workload on
// a fresh pool with torn-write tracking armed, crash at the point's first
// hit, revert every cacheline that was not flushed+fenced (the power-
// failure image), reopen, and assert the recovered table is
// model-consistent (every committed insert present with its value, the
// in-flight key present-or-absent but never corrupt), structurally sound
// (Verify()), and still operational.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/kv_index.h"
#include "epoch/epoch_manager.h"
#include "pmem/crash_point.h"
#include "pmem/flush_tracker.h"
#include "pmem/pool.h"
#include "test_util.h"

namespace dash::api {
namespace {

// Small tables so splits, doublings, expansions, and resizes all happen
// within the first few thousand inserts; identical for trace and sweep so
// every traced point is guaranteed reachable in the sweep run.
DashOptions SmallTableOptions() {
  DashOptions o;
  o.buckets_per_segment = 16;
  o.stash_buckets = 2;
  o.initial_depth = 1;
  o.lh_base_segments = 4;
  o.lh_stride = 2;
  return o;
}

constexpr uint64_t kWorkloadKeys = 20000;
constexpr size_t kPoolSize = 64ull << 20;

uint64_t ValueOf(uint64_t key) { return key * 31 + 7; }

// Leaves no armed point / tracking behind when an ASSERT bails out of a
// sweep case mid-flight.
struct InjectionCleanup {
  ~InjectionCleanup() {
    pmem::CrashPointDisarm();
    if (pmem::TornWriteArmed()) pmem::TornWriteDisarm();
  }
};

std::vector<std::string> DiscoverPoints(IndexKind kind) {
  test::TempPoolFile file(std::string("sweep_trace_") + IndexKindName(kind));
  auto pool = test::CreatePool(file, kPoolSize);
  EXPECT_NE(pool, nullptr);
  if (pool == nullptr) return {};
  epoch::EpochManager epochs;
  auto index = CreateKvIndex(kind, pool.get(), &epochs, SmallTableOptions());
  EXPECT_NE(index, nullptr);
  if (index == nullptr) return {};
  pmem::CrashPointTraceStart();
  for (uint64_t k = 1; k <= kWorkloadKeys; ++k) {
    EXPECT_EQ(index->Insert(k, ValueOf(k)), Status::kOk) << "key " << k;
  }
  std::vector<std::string> points = pmem::CrashPointTraceStop();
  index->CloseClean();
  pool->CloseClean();
  return points;
}

void RunCrashCase(IndexKind kind, const std::string& point) {
  InjectionCleanup cleanup;
  test::TempPoolFile file(std::string("sweep_") + IndexKindName(kind));
  auto pool = test::CreatePool(file, kPoolSize);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index = CreateKvIndex(kind, pool.get(), &epochs, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  ASSERT_TRUE(pmem::TornWriteArm());
  ASSERT_TRUE(pmem::CrashPointArm(point));
  uint64_t crashed_at = 0;
  for (uint64_t k = 1; k <= kWorkloadKeys; ++k) {
    try {
      ASSERT_EQ(index->Insert(k, ValueOf(k)), Status::kOk) << "key " << k;
    } catch (const pmem::CrashInjected&) {
      crashed_at = k;
      break;
    }
  }
  pmem::CrashPointDisarm();
  // The trace run hit this point with the very same workload, so the
  // sweep run must crash.
  ASSERT_NE(crashed_at, 0u) << "point " << point << " never fired";

  // Power failure: unflushed cachelines are lost, volatile state is gone,
  // the mapping goes away without a clean-shutdown marker.
  pmem::TornWriteRevert();
  epochs.DiscardAll();
  index.reset();
  pool->CloseDirty();
  pool.reset();

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  ASSERT_TRUE(pool->recovered_from_crash());
  epoch::EpochManager epochs2;
  index = CreateKvIndex(kind, pool.get(), &epochs2, SmallTableOptions());
  ASSERT_NE(index, nullptr);

  EXPECT_TRUE(index->Verify()) << "structural verify failed after " << point;

  // Model consistency: every insert that returned before the crash is
  // durable; the in-flight one may have landed or not, but never with a
  // wrong value.
  uint64_t value = 0;
  for (uint64_t k = 1; k < crashed_at; ++k) {
    ASSERT_EQ(index->Search(k, &value), Status::kOk)
        << "committed key " << k << " lost after " << point;
    ASSERT_EQ(value, ValueOf(k)) << "key " << k << " corrupt after " << point;
  }
  const Status in_flight = index->Search(crashed_at, &value);
  ASSERT_TRUE(in_flight == Status::kOk || in_flight == Status::kNotFound)
      << "in-flight key " << crashed_at << ": " << StatusName(in_flight);
  if (in_flight == Status::kOk) {
    ASSERT_EQ(value, ValueOf(crashed_at));
  }

  // Operational: the recovered table accepts and serves new traffic.
  for (uint64_t k = kWorkloadKeys + 1; k <= kWorkloadKeys + 1000; ++k) {
    ASSERT_EQ(index->Insert(k, ValueOf(k)), Status::kOk) << "key " << k;
  }
  for (uint64_t k = kWorkloadKeys + 1; k <= kWorkloadKeys + 1000; ++k) {
    ASSERT_EQ(index->Search(k, &value), Status::kOk);
    ASSERT_EQ(value, ValueOf(k));
  }
  index->CloseClean();
  pool->CloseClean();
}

class CrashSweepTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(CrashSweepTest, TornWriteSweepRecoversModelConsistentState) {
  const IndexKind kind = GetParam();
  const std::vector<std::string> points = DiscoverPoints(kind);
  ASSERT_FALSE(points.empty()) << "no crash points traced for "
                               << IndexKindName(kind);
  for (const std::string& point : points) {
    SCOPED_TRACE(std::string(IndexKindName(kind)) + " @ " + point);
    RunCrashCase(kind, point);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

std::string KindName(const ::testing::TestParamInfo<IndexKind>& info) {
  std::string name = IndexKindName(info.param);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CrashSweepTest,
                         ::testing::Values(IndexKind::kDashEH,
                                           IndexKind::kDashLH,
                                           IndexKind::kCCEH,
                                           IndexKind::kLevel,
                                           IndexKind::kHybrid),
                         KindName);

// Double-arming is an error (the second Arm must not silently replace the
// first), and trace mode excludes arming.
TEST(CrashPointContractTest, ArmIsExclusive) {
  ASSERT_TRUE(pmem::CrashPointArm("some_point"));
  EXPECT_FALSE(pmem::CrashPointArm("another_point"));
  pmem::CrashPointDisarm();
  pmem::CrashPointTraceStart();
  EXPECT_FALSE(pmem::CrashPointArm("some_point"));
  EXPECT_TRUE(pmem::CrashPointTraceStop().empty());
  ASSERT_TRUE(pmem::CrashPointArm("some_point"));
  pmem::CrashPointDisarm();
}

}  // namespace
}  // namespace dash::api
