// Public API tests: factory, kind parsing, adapter behaviour, cross-table
// behavioural equivalence on the same workload.

#include "api/kv_index.h"

#include <map>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rand.h"

namespace dash::api {
namespace {

TEST(IndexKindTest, NamesRoundTrip) {
  for (IndexKind kind : {IndexKind::kDashEH, IndexKind::kDashLH,
                         IndexKind::kCCEH, IndexKind::kLevel}) {
    IndexKind parsed;
    ASSERT_TRUE(ParseIndexKind(IndexKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
}

TEST(IndexKindTest, UnknownNameRejected) {
  IndexKind kind;
  EXPECT_FALSE(ParseIndexKind("robinhood", &kind));
  EXPECT_FALSE(ParseIndexKind("", &kind));
}

class ApiTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(ApiTest, FactoryCreatesWorkingIndex) {
  test::TempPoolFile file(std::string("api_") + IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  auto index = CreateKvIndex(GetParam(), pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->kind(), GetParam());

  EXPECT_TRUE(index->Insert(1, 2));
  EXPECT_FALSE(index->Insert(1, 3));
  uint64_t value;
  EXPECT_TRUE(index->Search(1, &value));
  EXPECT_EQ(value, 2u);
  EXPECT_TRUE(index->Delete(1));
  EXPECT_FALSE(index->Search(1, &value));

  index->CloseClean();
  pool->CloseClean();
}

TEST_P(ApiTest, AgreesWithStdMapOnRandomWorkload) {
  test::TempPoolFile file(std::string("api_model_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.lh_base_segments = 4;
  opts.lh_stride = 2;
  auto index = CreateKvIndex(GetParam(), pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);

  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(2024);
  for (int iter = 0; iter < 100000; ++iter) {
    const uint64_t key = rng.NextBounded(5000) + 1;
    const uint64_t op = rng.NextBounded(5);
    uint64_t value;
    switch (op) {
      case 0:
      case 1: {
        const bool inserted = index->Insert(key, iter);
        ASSERT_EQ(inserted, model.find(key) == model.end())
            << "iter " << iter << " key " << key;
        if (inserted) model[key] = iter;
        break;
      }
      case 2: {
        const bool found = index->Search(key, &value);
        const auto it = model.find(key);
        ASSERT_EQ(found, it != model.end()) << "iter " << iter;
        if (found) {
          ASSERT_EQ(value, it->second);
        }
        break;
      }
      case 3: {
        const bool updated = index->Update(key, iter + 1);
        const auto it = model.find(key);
        ASSERT_EQ(updated, it != model.end()) << "iter " << iter;
        if (updated) it->second = iter + 1;
        break;
      }
      case 4: {
        const bool deleted = index->Delete(key);
        ASSERT_EQ(deleted, model.erase(key) == 1) << "iter " << iter;
        break;
      }
    }
  }
  EXPECT_EQ(index->Stats().records, model.size());
  index->CloseClean();
  pool->CloseClean();
}

INSTANTIATE_TEST_SUITE_P(
    AllTables, ApiTest,
    ::testing::Values(IndexKind::kDashEH, IndexKind::kDashLH,
                      IndexKind::kCCEH, IndexKind::kLevel),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name = IndexKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dash::api
