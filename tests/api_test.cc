// Public API tests: factory, kind parsing, adapter behaviour, cross-table
// behavioural equivalence on the same workload.

#include "api/kv_index.h"

#include <map>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rand.h"

namespace dash::api {
namespace {

TEST(IndexKindTest, NamesRoundTrip) {
  for (IndexKind kind : {IndexKind::kDashEH, IndexKind::kDashLH,
                         IndexKind::kCCEH, IndexKind::kLevel,
                         IndexKind::kHybrid}) {
    IndexKind parsed;
    ASSERT_TRUE(ParseIndexKind(IndexKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
}

TEST(IndexKindTest, UnknownNameRejected) {
  IndexKind kind;
  EXPECT_FALSE(ParseIndexKind("robinhood", &kind));
  EXPECT_FALSE(ParseIndexKind("", &kind));
}

class ApiTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(ApiTest, FactoryCreatesWorkingIndex) {
  test::TempPoolFile file(std::string("api_") + IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  auto index = CreateKvIndex(GetParam(), pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->kind(), GetParam());

  EXPECT_EQ(index->Insert(1, 2), Status::kOk);
  EXPECT_EQ(index->Insert(1, 3), Status::kExists);
  uint64_t value;
  EXPECT_EQ(index->Search(1, &value), Status::kOk);
  EXPECT_EQ(value, 2u);
  EXPECT_EQ(index->Update(1, 4), Status::kOk);
  EXPECT_EQ(index->Search(1, &value), Status::kOk);
  EXPECT_EQ(value, 4u);
  EXPECT_EQ(index->Delete(1), Status::kOk);
  EXPECT_EQ(index->Delete(1), Status::kNotFound);
  EXPECT_EQ(index->Search(1, &value), Status::kNotFound);
  EXPECT_EQ(index->Update(1, 5), Status::kNotFound);

  index->CloseClean();
  pool->CloseClean();
}

// Regression: key 0 is the CCEH empty-slot marker; API v2 rejects it for
// every table so workloads cannot silently corrupt CCEH semantics.
TEST_P(ApiTest, ReservedKeyRejectedEverywhere) {
  test::TempPoolFile file(std::string("api_reserved_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  auto index = CreateKvIndex(GetParam(), pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);

  uint64_t value = 0;
  EXPECT_EQ(index->Insert(0, 1), Status::kInvalidArgument);
  EXPECT_EQ(index->Search(0, &value), Status::kInvalidArgument);
  EXPECT_EQ(index->Update(0, 1), Status::kInvalidArgument);
  EXPECT_EQ(index->Delete(0), Status::kInvalidArgument);
  EXPECT_EQ(index->Stats().records, 0u);

  // Batches: reserved slots get kInvalidArgument, the rest still execute.
  uint64_t keys[3] = {7, 0, 9};
  uint64_t values[3] = {70, 1, 90};
  Status statuses[3];
  index->MultiInsert(keys, values, 3, statuses);
  EXPECT_EQ(statuses[0], Status::kOk);
  EXPECT_EQ(statuses[1], Status::kInvalidArgument);
  EXPECT_EQ(statuses[2], Status::kOk);
  EXPECT_EQ(index->Stats().records, 2u);

  Op ops[3] = {Op::Search(7), Op::Search(0), Op::Delete(9)};
  index->MultiExecute(ops, 3, statuses);
  EXPECT_EQ(statuses[0], Status::kOk);
  EXPECT_EQ(ops[0].value, 70u);
  EXPECT_EQ(statuses[1], Status::kInvalidArgument);
  EXPECT_EQ(statuses[2], Status::kOk);

  index->CloseClean();
  pool->CloseClean();
}

// The var-key surface reserves the empty key the same way.
TEST_P(ApiTest, EmptyVarKeyRejected) {
  test::TempPoolFile file(std::string("api_var_reserved_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  auto index = CreateVarKvIndex(GetParam(), pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);

  uint64_t value = 0;
  EXPECT_EQ(index->Insert("", 1), Status::kInvalidArgument);
  EXPECT_EQ(index->Search("", &value), Status::kInvalidArgument);
  EXPECT_EQ(index->Update("", 1), Status::kInvalidArgument);
  EXPECT_EQ(index->Delete(""), Status::kInvalidArgument);
  EXPECT_EQ(index->Insert("nonempty", 1), Status::kOk);
  EXPECT_EQ(index->Stats().records, 1u);

  index->CloseClean();
  pool->CloseClean();
}

TEST_P(ApiTest, AgreesWithStdMapOnRandomWorkload) {
  test::TempPoolFile file(std::string("api_model_") +
                          IndexKindName(GetParam()));
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.lh_base_segments = 4;
  opts.lh_stride = 2;
  auto index = CreateKvIndex(GetParam(), pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);

  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(2024);
  for (int iter = 0; iter < 100000; ++iter) {
    const uint64_t key = rng.NextBounded(5000) + 1;
    const uint64_t op = rng.NextBounded(5);
    uint64_t value;
    switch (op) {
      case 0:
      case 1: {
        const Status inserted = index->Insert(key, iter);
        ASSERT_EQ(inserted, model.find(key) == model.end()
                                ? Status::kOk
                                : Status::kExists)
            << "iter " << iter << " key " << key;
        if (IsOk(inserted)) model[key] = iter;
        break;
      }
      case 2: {
        const Status found = index->Search(key, &value);
        const auto it = model.find(key);
        ASSERT_EQ(found,
                  it != model.end() ? Status::kOk : Status::kNotFound)
            << "iter " << iter;
        if (IsOk(found)) {
          ASSERT_EQ(value, it->second);
        }
        break;
      }
      case 3: {
        const Status updated = index->Update(key, iter + 1);
        const auto it = model.find(key);
        ASSERT_EQ(updated,
                  it != model.end() ? Status::kOk : Status::kNotFound)
            << "iter " << iter;
        if (IsOk(updated)) it->second = iter + 1;
        break;
      }
      case 4: {
        const Status deleted = index->Delete(key);
        ASSERT_EQ(deleted,
                  model.erase(key) == 1 ? Status::kOk : Status::kNotFound)
            << "iter " << iter;
        break;
      }
    }
  }
  EXPECT_EQ(index->Stats().records, model.size());
  index->CloseClean();
  pool->CloseClean();
}

INSTANTIATE_TEST_SUITE_P(
    AllTables, ApiTest,
    ::testing::Values(IndexKind::kDashEH, IndexKind::kDashLH,
                      IndexKind::kCCEH, IndexKind::kLevel,
                      IndexKind::kHybrid),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name = IndexKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dash::api
