#include "util/hash.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dash::util {
namespace {

TEST(Murmur2Test, DeterministicAcrossCalls) {
  const char data[] = "persistent memory";
  EXPECT_EQ(Murmur2_64A(data, sizeof(data)), Murmur2_64A(data, sizeof(data)));
}

TEST(Murmur2Test, DifferentLengthsDiffer) {
  const char data[] = "aaaaaaaaaaaaaaaa";
  std::set<uint64_t> hashes;
  for (size_t len = 0; len <= sizeof(data); ++len) {
    hashes.insert(Murmur2_64A(data, len));
  }
  EXPECT_EQ(hashes.size(), sizeof(data) + 1);
}

TEST(Murmur2Test, SeedChangesHash) {
  const char data[] = "key";
  EXPECT_NE(Murmur2_64A(data, 3, 1), Murmur2_64A(data, 3, 2));
}

TEST(Murmur2Test, TailBytesMatter) {
  // Lengths not divisible by 8 exercise the tail switch.
  char a[9] = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  char b[9] = {0, 1, 2, 3, 4, 5, 6, 7, 9};
  EXPECT_NE(Murmur2_64A(a, 9), Murmur2_64A(b, 9));
}

TEST(HashInt64Test, MatchesByteHash) {
  const uint64_t key = 0x0123456789abcdefULL;
  EXPECT_EQ(HashInt64(key), Murmur2_64A(&key, sizeof(key)));
}

TEST(HashInt64Test, LowByteIsWellDistributed) {
  // The fingerprint is the least significant byte (§4.2); check rough
  // uniformity over sequential keys.
  std::vector<int> histogram(256, 0);
  constexpr int kKeys = 256 * 64;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ++histogram[HashInt64(k) & 0xFF];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 16);   // expected 64 per bin
    EXPECT_LT(count, 256);
  }
}

TEST(HashInt64Test, MsbBitsAreWellDistributed) {
  // Dash-EH addresses segments by MSBs (§4.7); check the top 4 bits.
  std::vector<int> histogram(16, 0);
  constexpr int kKeys = 16 * 256;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ++histogram[HashInt64(k) >> 60];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 128);  // expected 256 per bin
    EXPECT_LT(count, 512);
  }
}

TEST(Mix64Test, Bijective) {
  // splitmix64 finalizer is a bijection; sample for collisions.
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

}  // namespace
}  // namespace dash::util
