#include "epoch/epoch_manager.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dash::epoch {
namespace {

TEST(EpochTest, RetireWithoutGuardsReclaimsImmediately) {
  EpochManager mgr;
  bool reclaimed = false;
  mgr.Retire([&] { reclaimed = true; });
  mgr.TryAdvanceAndReclaim();
  EXPECT_TRUE(reclaimed);
}

TEST(EpochTest, ActiveGuardBlocksReclamation) {
  EpochManager mgr;
  std::atomic<bool> reclaimed{false};
  std::atomic<bool> guard_held{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    EpochManager::Guard guard(mgr);
    guard_held.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!guard_held.load()) std::this_thread::yield();

  mgr.Retire([&] { reclaimed.store(true); });
  mgr.TryAdvanceAndReclaim();
  EXPECT_FALSE(reclaimed.load()) << "guard pinned at retire epoch";

  release.store(true);
  reader.join();
  mgr.TryAdvanceAndReclaim();
  EXPECT_TRUE(reclaimed.load());
}

TEST(EpochTest, GuardAfterRetireDoesNotBlock) {
  EpochManager mgr;
  std::atomic<bool> reclaimed{false};
  mgr.Retire([&] { reclaimed.store(true); });
  {
    // This guard pins an epoch later than the retirement.
    EpochManager::Guard guard(mgr);
    mgr.TryAdvanceAndReclaim();
  }
  mgr.TryAdvanceAndReclaim();
  EXPECT_TRUE(reclaimed.load());
}

TEST(EpochTest, NestedGuardsSupported) {
  EpochManager mgr;
  EpochManager::Guard outer(mgr);
  {
    EpochManager::Guard inner(mgr);
  }
  // Outer still pins; a retirement at this epoch must not run.
  std::atomic<bool> reclaimed{false};
  mgr.Retire([&] { reclaimed.store(true); });
  mgr.TryAdvanceAndReclaim();
  EXPECT_FALSE(reclaimed.load());
}

TEST(EpochTest, DrainAllRunsEverything) {
  EpochManager mgr;
  int count = 0;
  for (int i = 0; i < 10; ++i) mgr.Retire([&] { ++count; });
  mgr.DrainAll();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(mgr.PendingCount(), 0u);
}

TEST(EpochTest, StressManyReadersAndRetirers) {
  EpochManager mgr;
  std::atomic<uint64_t> reclaimed{0};
  std::atomic<bool> stop{false};
  constexpr int kRetirements = 2000;

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        EpochManager::Guard guard(mgr);
      }
    });
  }
  std::vector<std::thread> retirers;
  for (int t = 0; t < 2; ++t) {
    retirers.emplace_back([&] {
      for (int i = 0; i < kRetirements / 2; ++i) {
        mgr.Retire([&] { reclaimed.fetch_add(1); });
      }
    });
  }
  for (auto& t : retirers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  mgr.DrainAll();
  EXPECT_EQ(reclaimed.load(), static_cast<uint64_t>(kRetirements));
}

}  // namespace
}  // namespace dash::epoch
