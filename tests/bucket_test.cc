#include "dash/bucket.h"

#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "dash/key_policy.h"

namespace dash {
namespace {

class BucketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    void* mem = nullptr;
    ASSERT_EQ(posix_memalign(&mem, 64, sizeof(Bucket)), 0);
    std::memset(mem, 0, sizeof(Bucket));
    bucket_ = static_cast<Bucket*>(mem);
    bucket_->Clear();
  }
  void TearDown() override { free(bucket_); }

  Bucket* bucket_;
  DashOptions opts_;
};

TEST_F(BucketTest, LayoutIs256Bytes) {
  EXPECT_EQ(sizeof(Bucket), 256u);
  EXPECT_EQ(Bucket::kNumSlots, 14u);
}

TEST_F(BucketTest, InsertAndFind) {
  ASSERT_TRUE(bucket_->Insert(/*key=*/77, /*value=*/123, /*fp=*/0xAB,
                              /*member=*/false));
  EXPECT_EQ(bucket_->count(), 1u);
  const int slot = bucket_->FindKey<IntKeyPolicy>(0xAB, 77, opts_);
  ASSERT_GE(slot, 0);
  EXPECT_EQ(bucket_->record(slot).value, 123u);
}

TEST_F(BucketTest, FingerprintMismatchSkipsSlots) {
  ASSERT_TRUE(bucket_->Insert(77, 123, 0xAB, false));
  EXPECT_LT(bucket_->FindKey<IntKeyPolicy>(0xCD, 77, opts_), 0)
      << "wrong fingerprint must not match when fingerprints are on";
}

TEST_F(BucketTest, FingerprintsOffStillFindsKey) {
  opts_.use_fingerprints = false;
  ASSERT_TRUE(bucket_->Insert(77, 123, 0xAB, false));
  EXPECT_GE(bucket_->FindKey<IntKeyPolicy>(0x00, 77, opts_), 0);
}

TEST_F(BucketTest, FillsToFourteenThenRejects) {
  for (uint64_t k = 1; k <= Bucket::kNumSlots; ++k) {
    EXPECT_TRUE(bucket_->Insert(k, k * 10, static_cast<uint8_t>(k), false));
  }
  EXPECT_TRUE(bucket_->IsFull());
  EXPECT_FALSE(bucket_->Insert(99, 990, 0x99, false));
}

TEST_F(BucketTest, DeleteFreesSlotForReuse) {
  for (uint64_t k = 1; k <= Bucket::kNumSlots; ++k) {
    ASSERT_TRUE(bucket_->Insert(k, k, static_cast<uint8_t>(k), false));
  }
  const int slot = bucket_->FindKey<IntKeyPolicy>(5, 5, opts_);
  ASSERT_GE(slot, 0);
  bucket_->DeleteSlot(slot);
  EXPECT_EQ(bucket_->count(), Bucket::kNumSlots - 1);
  EXPECT_LT(bucket_->FindKey<IntKeyPolicy>(5, 5, opts_), 0);
  EXPECT_TRUE(bucket_->Insert(100, 100, 100, false));
  EXPECT_TRUE(bucket_->IsFull());
}

TEST_F(BucketTest, MembershipBitsTracked) {
  ASSERT_TRUE(bucket_->Insert(1, 1, 1, /*member=*/false));
  ASSERT_TRUE(bucket_->Insert(2, 2, 2, /*member=*/true));
  const uint32_t meta = bucket_->meta();
  const int home = bucket_->FindKey<IntKeyPolicy>(1, 1, opts_);
  const int moved = bucket_->FindKey<IntKeyPolicy>(2, 2, opts_);
  EXPECT_FALSE(bucket_->SlotMembership(meta, home));
  EXPECT_TRUE(bucket_->SlotMembership(meta, moved));
}

TEST_F(BucketTest, FindVictimByMembership) {
  ASSERT_TRUE(bucket_->Insert(1, 1, 1, false));
  ASSERT_TRUE(bucket_->Insert(2, 2, 2, true));
  const int home_victim = bucket_->FindVictim(/*member=*/false);
  const int moved_victim = bucket_->FindVictim(/*member=*/true);
  ASSERT_GE(home_victim, 0);
  ASSERT_GE(moved_victim, 0);
  EXPECT_EQ(bucket_->record(home_victim).key, 1u);
  EXPECT_EQ(bucket_->record(moved_victim).key, 2u);
}

TEST_F(BucketTest, FindVictimNoneWhenAbsent) {
  ASSERT_TRUE(bucket_->Insert(1, 1, 1, false));
  EXPECT_LT(bucket_->FindVictim(/*member=*/true), 0);
}

TEST_F(BucketTest, CounterMatchesPopcount) {
  for (uint64_t k = 1; k <= 9; ++k) {
    ASSERT_TRUE(bucket_->Insert(k, k, static_cast<uint8_t>(k), k % 2 == 0));
  }
  const uint32_t meta = bucket_->meta();
  EXPECT_EQ(Bucket::Count(meta),
            static_cast<uint32_t>(__builtin_popcount(Bucket::AllocBits(meta))));
}

// --- overflow metadata (§4.3) ---

TEST_F(BucketTest, OverflowFpRoundTrip) {
  EXPECT_TRUE(bucket_->TrySetOverflowFp(0xAA, /*stash_pos=*/1, false));
  EXPECT_EQ(bucket_->OverflowStashHints(0xAA, false), 1u << 1);
  EXPECT_EQ(bucket_->OverflowStashHints(0xAA, true), 0u)
      << "membership must be part of the match";
  EXPECT_EQ(bucket_->OverflowStashHints(0xBB, false), 0u);
  EXPECT_TRUE(bucket_->ClearOverflowFp(0xAA, 1, false));
  EXPECT_EQ(bucket_->OverflowStashHints(0xAA, false), 0u);
}

TEST_F(BucketTest, OverflowFpCapacityIsFour) {
  for (uint32_t i = 0; i < Bucket::kNumOverflowFps; ++i) {
    EXPECT_TRUE(bucket_->TrySetOverflowFp(static_cast<uint8_t>(i), 0, false));
  }
  EXPECT_FALSE(bucket_->TrySetOverflowFp(0xEE, 0, false))
      << "fifth overflow fingerprint must be rejected (counter takes over)";
}

TEST_F(BucketTest, OverflowUnencodablePositionRejected) {
  EXPECT_FALSE(
      bucket_->TrySetOverflowFp(0x11, Bucket::kStashPosUnencodable, false));
}

TEST_F(BucketTest, ClearOverflowFpRequiresExactMatch) {
  ASSERT_TRUE(bucket_->TrySetOverflowFp(0x42, 2, true));
  EXPECT_FALSE(bucket_->ClearOverflowFp(0x42, 1, true));   // wrong pos
  EXPECT_FALSE(bucket_->ClearOverflowFp(0x42, 2, false));  // wrong member
  EXPECT_TRUE(bucket_->ClearOverflowFp(0x42, 2, true));
}

TEST_F(BucketTest, OverflowCountSaturatesAtZero) {
  EXPECT_EQ(bucket_->overflow_count(), 0);
  bucket_->DecOverflowCount();
  EXPECT_EQ(bucket_->overflow_count(), 0);
  bucket_->IncOverflowCount();
  bucket_->IncOverflowCount();
  EXPECT_EQ(bucket_->overflow_count(), 2);
  bucket_->DecOverflowCount();
  EXPECT_EQ(bucket_->overflow_count(), 1);
}

TEST_F(BucketTest, ClearOverflowMetadataResetsEverything) {
  bucket_->TrySetOverflowFp(0x42, 2, true);
  bucket_->IncOverflowCount();
  bucket_->ClearOverflowMetadata();
  EXPECT_FALSE(bucket_->HasAnyOverflow());
  EXPECT_EQ(bucket_->OverflowStashHints(0x42, true), 0u);
}

TEST_F(BucketTest, VarKeyFindUsesPointerComparison) {
  // Emulate a stored VarKey blob without an allocator.
  alignas(8) char blob_mem[32];
  auto* blob = reinterpret_cast<VarKey*>(blob_mem);
  const char* text = "hello-key";
  blob->length = static_cast<uint32_t>(strlen(text));
  std::memcpy(blob->data, text, blob->length);

  ASSERT_TRUE(bucket_->Insert(reinterpret_cast<uint64_t>(blob), 7, 0x5A,
                              false));
  const int slot =
      bucket_->FindKey<VarKeyPolicy>(0x5A, std::string_view(text), opts_);
  ASSERT_GE(slot, 0);
  EXPECT_EQ(bucket_->record(slot).value, 7u);
  EXPECT_LT(bucket_->FindKey<VarKeyPolicy>(0x5A, std::string_view("hello-kez"),
                                           opts_),
            0);
  EXPECT_LT(
      bucket_->FindKey<VarKeyPolicy>(0x5A, std::string_view("hello"), opts_),
      0)
      << "prefix must not match";
}

TEST_F(BucketTest, FindStoredKeyInlineAndPointer) {
  ASSERT_TRUE(bucket_->Insert(42, 1, 0x01, false));
  EXPECT_GE(bucket_->FindStoredKey<IntKeyPolicy>(0x01, 42, opts_), 0);
  EXPECT_LT(bucket_->FindStoredKey<IntKeyPolicy>(0x01, 43, opts_), 0);
}

}  // namespace
}  // namespace dash
