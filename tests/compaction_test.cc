// Online log-compaction tests (src/hybrid/): model equivalence under
// randomized update/delete/reinsert churn for both key widths, physical
// chain shrink after bulk deletes, searches and updates racing a lane
// rewrite (the TSan target), a torn-write crash sweep over every
// compaction crash point, checkpoint-then-compact-then-reopen
// equivalence, and the reopen path seeding honest dead ratios.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/kv_index.h"
#include "epoch/epoch_manager.h"
#include "hybrid/hybrid_table.h"
#include "pmem/index_persist.h"
#include "pmem/crash_point.h"
#include "pmem/flush_tracker.h"
#include "pmem/pool.h"
#include "test_util.h"
#include "util/rand.h"

namespace dash::hybrid {
namespace {

using api::IndexKind;
using api::Status;

HybridOptions CompactingOptions() {
  HybridOptions o;
  o.buckets_per_segment = 16;
  o.stash_slots = 16;
  o.initial_depth = 1;
  o.log_lanes = 4;
  o.records_per_chunk = 256;
  o.compaction_trigger = 0.2;
  return o;
}

struct InjectionCleanup {
  ~InjectionCleanup() {
    pmem::CrashPointDisarm();
    if (pmem::TornWriteArmed()) pmem::TornWriteDisarm();
  }
};

struct TempCheckpoint {
  explicit TempCheckpoint(std::string p) : path(std::move(p)) {
    pmem::RemoveCheckpointFile(path);
  }
  ~TempCheckpoint() { pmem::RemoveCheckpointFile(path); }
  std::string path;
};

// Randomized churn with periodic compaction passes must stay equal to a
// std::map model: relocation is value-preserving and invisible.
TEST(CompactionTest, ModelEquivalenceUnderChurn) {
  test::TempPoolFile file("compact_model");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  HybridTable<> table(pool.get(), &epochs, CompactingOptions());

  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(42);
  constexpr uint64_t kKeySpace = 4000;
  constexpr int kOps = 60000;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t k = 1 + rng.NextBounded(kKeySpace);
    switch (rng.NextBounded(4)) {
      case 0: {  // insert (or collide)
        const auto st = table.Insert(k, k + i);
        if (model.count(k)) {
          ASSERT_EQ(st, OpStatus::kExists);
        } else {
          ASSERT_EQ(st, OpStatus::kOk);
          model[k] = k + i;
        }
        break;
      }
      case 1: {  // update
        const auto st = table.Update(k, i);
        if (model.count(k)) {
          ASSERT_EQ(st, OpStatus::kOk);
          model[k] = i;
        } else {
          ASSERT_EQ(st, OpStatus::kNotFound);
        }
        break;
      }
      case 2: {  // delete
        const auto st = table.Delete(k);
        if (model.count(k)) {
          ASSERT_EQ(st, OpStatus::kOk);
          model.erase(k);
        } else {
          ASSERT_EQ(st, OpStatus::kNotFound);
        }
        break;
      }
      default: {  // search
        uint64_t value = 0;
        const auto st = table.Search(k, &value);
        if (model.count(k)) {
          ASSERT_EQ(st, OpStatus::kOk);
          ASSERT_EQ(value, model[k]);
        } else {
          ASSERT_EQ(st, OpStatus::kNotFound);
        }
        break;
      }
    }
    if (i % 2000 == 1999) {
      epochs.DrainAll();
      table.Compact();
    }
  }
  // Shrink the live set: steady churn recycles slots through the epoch
  // manager and keeps the dead ratio near zero (space is already
  // bounded), so the trigger-worthy state is a downsized table whose
  // chains are still sized for the old peak.
  std::vector<uint64_t> doomed;
  for (const auto& [k, v] : model) {
    if (k % 2 == 0) doomed.push_back(k);
  }
  for (uint64_t k : doomed) {
    ASSERT_EQ(table.Delete(k), OpStatus::kOk);
    model.erase(k);
  }
  epochs.DrainAll();
  while (table.Compact()) {
  }
  ASSERT_TRUE(table.VerifyStructure());

  const HybridStats stats = table.Stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.compaction_chunks_reclaimed, 0u);
  EXPECT_GT(stats.compaction_bytes_rewritten, 0u);
  EXPECT_EQ(stats.records, model.size());
  uint64_t value = 0;
  for (const auto& [k, v] : model) {
    ASSERT_EQ(table.Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, v) << "key " << k;
  }
  table.CloseClean();
  pool->CloseClean();
}

// Same churn through the var-key adapter: relocation deep-copies the key
// blob, so pointer-mode compaction must be just as invisible.
TEST(CompactionTest, ModelEquivalenceUnderChurnVarKeys) {
  test::TempPoolFile file("compact_model_var");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.compaction_trigger = 0.2;
  auto index =
      api::CreateVarKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);

  auto key_of = [](uint64_t i) {
    // Mixed lengths, some past any inline threshold.
    std::string k = "compact_key_" + std::to_string(i);
    if (i % 3 == 0) k += std::string(i % 40, 'x');
    return k;
  };
  std::map<uint64_t, uint64_t> model;
  util::Xoshiro256 rng(7);
  constexpr uint64_t kKeySpace = 2000;
  constexpr int kOps = 30000;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t n = 1 + rng.NextBounded(kKeySpace);
    const std::string k = key_of(n);
    switch (rng.NextBounded(3)) {
      case 0: {
        const auto st = index->Insert(k, n + i);
        if (model.count(n)) {
          ASSERT_EQ(st, Status::kExists);
        } else {
          ASSERT_EQ(st, Status::kOk);
          model[n] = n + i;
        }
        break;
      }
      case 1: {
        const auto st = index->Update(k, i);
        if (model.count(n)) {
          ASSERT_EQ(st, Status::kOk);
          model[n] = i;
        } else {
          ASSERT_EQ(st, Status::kNotFound);
        }
        break;
      }
      default: {
        const auto st = index->Delete(k);
        if (model.count(n)) {
          ASSERT_EQ(st, Status::kOk);
          model.erase(n);
        } else {
          ASSERT_EQ(st, Status::kNotFound);
        }
        break;
      }
    }
    if (i % 2000 == 1999) {
      epochs.DrainAll();
      index->Compact();
    }
  }
  epochs.DrainAll();
  while (index->Compact()) {
  }
  EXPECT_TRUE(index->Verify());
  uint64_t value = 0;
  for (uint64_t n = 1; n <= kKeySpace; ++n) {
    if (model.count(n)) {
      ASSERT_EQ(index->Search(key_of(n), &value), Status::kOk) << n;
      ASSERT_EQ(value, model[n]) << n;
    } else {
      ASSERT_EQ(index->Search(key_of(n), &value), Status::kNotFound) << n;
    }
  }
  index->CloseClean();
  pool->CloseClean();
}

// The point of compaction: after a bulk delete the lane chains must
// shrink *physically* (chunks returned to the pool), not just logically.
TEST(CompactionTest, ChainsShrinkAfterBulkDelete) {
  test::TempPoolFile file("compact_shrink");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  HybridTable<> table(pool.get(), &epochs, CompactingOptions());

  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table.Insert(k, k), OpStatus::kOk);
  }
  for (uint64_t k = 1; k <= kKeys; ++k) {
    if (k % 10 != 0) ASSERT_EQ(table.Delete(k), OpStatus::kOk);
  }
  epochs.DrainAll();  // retirements run: slots recycle, dead counts rise

  const HybridStats before = table.Stats();
  EXPECT_GT(before.compaction_dead_ratio, 0.2);
  while (table.Compact()) {
  }
  const HybridStats after = table.Stats();
  EXPECT_GT(after.compaction_chunks_reclaimed, 0u);
  EXPECT_LT(after.log_chunks, before.log_chunks / 2)
      << "compaction failed to shrink the chains physically";
  ASSERT_TRUE(table.VerifyStructure());

  uint64_t value = 0;
  for (uint64_t k = 10; k <= kKeys; k += 10) {
    ASSERT_EQ(table.Search(k, &value), OpStatus::kOk) << "key " << k;
    ASSERT_EQ(value, k);
  }
  EXPECT_EQ(table.Stats().records, kKeys / 10);
  table.CloseClean();
  pool->CloseClean();
}

// Searches and updates racing lane rewrites (run under TSan in CI).
// Readers chasing a stale handle revalidate exactly as for updates, so
// every search must observe some committed value its key once held.
TEST(CompactionTest, ConcurrentOpsDuringCompaction) {
  test::TempPoolFile file("compact_race");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  HybridTable<> table(pool.get(), &epochs, CompactingOptions());

  constexpr uint64_t kKeys = 8000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(table.Insert(k, k), OpStatus::kOk);
  }
  // Shrink the live set to a quarter so the chains carry real dead
  // capacity and every Compact() pass below has victims to rewrite.
  for (uint64_t k = 1; k <= kKeys; ++k) {
    if (k % 4 != 0) ASSERT_EQ(table.Delete(k), OpStatus::kOk);
  }
  epochs.DrainAll();
  ASSERT_GT(table.Stats().compaction_dead_ratio, 0.2);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = 4 * (1 + rng.NextBounded(kKeys / 4));
        if (rng.NextBounded(4) == 0) {
          if (table.Update(k, k + (rng.NextBounded(1000))) != OpStatus::kOk) {
            failures.fetch_add(1);
          }
        } else {
          uint64_t value = 0;
          if (table.Search(k, &value) != OpStatus::kOk || value < k ||
              value >= k + 1000) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (int pass = 0; pass < 50; ++pass) {
    table.Compact();
    epochs.TryAdvanceAndReclaim();
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0u);
  epochs.DrainAll();
  ASSERT_TRUE(table.VerifyStructure());
  EXPECT_GT(table.Stats().compactions, 0u);
  table.CloseClean();
  pool->CloseClean();
}

// Torn-write crash sweep over every compaction crash point: reserve
// (slot popped, nothing written), copy (payload persisted, meta not
// published), publish (slot swung, original not yet retired), retire
// (chunk unlinked + staged, not yet freed). Recovery must rebuild the
// exact pre-compaction logical state — compaction is invisible to
// crashes too.
TEST(CompactionCrashTest, CrashSweepAtEveryCompactionPoint) {
  for (const char* point :
       {"hybrid_compact_after_reserve", "hybrid_compact_after_copy",
        "hybrid_compact_after_publish", "hybrid_compact_after_retire"}) {
    SCOPED_TRACE(point);
    InjectionCleanup cleanup;
    test::TempPoolFile file("compact_crash");
    auto pool = test::CreatePool(file);
    ASSERT_NE(pool, nullptr);
    DashOptions opts;
    opts.buckets_per_segment = 16;
    opts.compaction_trigger = 0.1;
    constexpr uint64_t kKeys = 6000;
    {
      auto epochs = std::make_unique<epoch::EpochManager>();
      auto index = api::CreateKvIndex(IndexKind::kHybrid, pool.get(),
                                      epochs.get(), opts);
      ASSERT_NE(index, nullptr);
      for (uint64_t k = 1; k <= kKeys; ++k) {
        ASSERT_EQ(index->Insert(k, k * 3), Status::kOk);
      }
      // Half the records die; the other half must be relocated, so every
      // crash point is reachable.
      for (uint64_t k = 2; k <= kKeys; k += 2) {
        ASSERT_EQ(index->Delete(k), Status::kOk);
      }
      epochs->DrainAll();

      ASSERT_TRUE(pmem::TornWriteArm());
      ASSERT_TRUE(pmem::CrashPointArm(point));
      bool crashed = false;
      try {
        for (int pass = 0; pass < 60 && !crashed; ++pass) {
          index->Compact();
        }
      } catch (const pmem::CrashInjected&) {
        crashed = true;
      }
      pmem::CrashPointDisarm();
      ASSERT_TRUE(crashed) << point << " never fired";
      pmem::TornWriteRevert();
      epochs->DiscardAll();
      index.reset();
      epochs.reset();
      pool->CloseDirty();
      pool.reset();
    }

    pool = pmem::PmPool::Open(file.path());
    ASSERT_NE(pool, nullptr);
    epoch::EpochManager epochs;
    auto index =
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    EXPECT_TRUE(index->Verify());
    uint64_t value = 0;
    for (uint64_t k = 1; k <= kKeys; ++k) {
      if (k % 2 == 0) {
        ASSERT_EQ(index->Search(k, &value), Status::kNotFound)
            << "deleted key " << k << " resurrected after " << point;
      } else {
        ASSERT_EQ(index->Search(k, &value), Status::kOk)
            << "key " << k << " lost after " << point;
        ASSERT_EQ(value, k * 3) << "key " << k << " corrupt after " << point;
      }
    }
    index->CloseClean();
    pool->CloseClean();
  }
}

// Checkpoint, then compact, then dirty reopen from the checkpoint. The
// interplay under test: compaction zeroes originals whose seqs sit at or
// below the checkpointed watermark (their checkpointed slots become
// untrusted and are dropped) and stamps the copies with fresh seqs above
// it (they come back via tail replay). The reopened table must equal the
// model, from the checkpoint, with honest dead accounting.
TEST(CompactionCrashTest, CheckpointThenCompactThenReopen) {
  test::TempPoolFile file("compact_ckpt");
  TempCheckpoint ckpt(file.path() + ".ckpt");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.compaction_trigger = 0.1;
  opts.checkpoint_path = ckpt.path;
  constexpr uint64_t kKeys = 6000;
  {
    epoch::EpochManager epochs;
    auto index =
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(index->Insert(k, k), Status::kOk);
    }
    ASSERT_TRUE(index->WriteCheckpoint());
    // Post-checkpoint churn: every key's record moves past the
    // watermark, half the keys die, and compaction then rewrites what
    // the checkpoint thought it knew.
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(index->Update(k, k * 9), Status::kOk);
    }
    for (uint64_t k = 3; k <= kKeys; k += 3) {
      ASSERT_EQ(index->Delete(k), Status::kOk);
    }
    epochs.DrainAll();
    while (index->Compact()) {
    }
    EXPECT_GT(index->Stats().compaction_chunks_reclaimed, 0u);
    // Dirty close: recovery has only the stale checkpoint + the log.
    index.reset();
    pool->CloseDirty();
    pool.reset();
  }

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  const api::IndexStats stats = index->Stats();
  EXPECT_EQ(stats.recovery_source, RecoverySource::kCheckpoint);
  EXPECT_TRUE(index->Verify());
  uint64_t value = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    if (k % 3 == 0) {
      ASSERT_EQ(index->Search(k, &value), Status::kNotFound) << k;
    } else {
      ASSERT_EQ(index->Search(k, &value), Status::kOk) << k;
      ASSERT_EQ(value, k * 9) << k;
    }
  }
  index->CloseClean();
  pool->CloseClean();
}

// A reopen from a stale checkpoint must start with honest dead ratios
// (the untrusted slots it dropped and the garbage it swept feed the
// accounting), so compaction can reclaim space immediately instead of
// waiting for fresh churn to rediscover what the load already knew.
TEST(CompactionCrashTest, ReopenSeedsDeadAccounting) {
  test::TempPoolFile file("compact_seed");
  TempCheckpoint ckpt(file.path() + ".ckpt");
  auto pool = test::CreatePool(file);
  ASSERT_NE(pool, nullptr);
  DashOptions opts;
  opts.buckets_per_segment = 16;
  opts.compaction_trigger = 0.1;
  opts.checkpoint_path = ckpt.path;
  constexpr uint64_t kKeys = 6000;
  {
    epoch::EpochManager epochs;
    auto index =
        api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
    ASSERT_NE(index, nullptr);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      ASSERT_EQ(index->Insert(k, k), Status::kOk);
    }
    // Checkpoint first, then shrink the live set: the checkpointed slots
    // for the deleted keys go stale, and the zeroed records they named
    // are real reclaimable capacity the reopen must not forget. (An
    // update storm would not do: its garbage recycles through the epoch
    // manager as it runs, so the clamp against the free-list size
    // rightly reports a near-zero ratio.)
    ASSERT_TRUE(index->WriteCheckpoint());
    for (uint64_t k = 1; k <= kKeys; ++k) {
      if (k % 4 != 0) ASSERT_EQ(index->Delete(k), Status::kOk);
    }
    epochs.DrainAll();
    index.reset();
    pool->CloseDirty();
    pool.reset();
  }

  pool = pmem::PmPool::Open(file.path());
  ASSERT_NE(pool, nullptr);
  epoch::EpochManager epochs;
  auto index =
      api::CreateKvIndex(IndexKind::kHybrid, pool.get(), &epochs, opts);
  ASSERT_NE(index, nullptr);
  api::IndexStats stats = index->Stats();
  EXPECT_EQ(stats.recovery_source, RecoverySource::kCheckpoint);
  EXPECT_GT(stats.log_dead_slots, 0u)
      << "reopen did not seed dead-slot accounting";
  EXPECT_GT(stats.compaction_dead_ratio, 0.0);
  // ... and the honest ratio is actionable: compaction reclaims chunks
  // with no further churn at all.
  while (index->Compact()) {
  }
  stats = index->Stats();
  EXPECT_GT(stats.compaction_chunks_reclaimed, 0u)
      << "seeded ratios did not let compaction make progress";
  EXPECT_TRUE(index->Verify());
  uint64_t value = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    if (k % 4 != 0) {
      ASSERT_EQ(index->Search(k, &value), Status::kNotFound) << k;
    } else {
      ASSERT_EQ(index->Search(k, &value), Status::kOk) << k;
      ASSERT_EQ(value, k) << k;
    }
  }
  index->CloseClean();
  pool->CloseClean();
}

}  // namespace
}  // namespace dash::hybrid
