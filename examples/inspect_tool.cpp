// Pool/table inspector: opens an existing pool holding a Dash table and
// prints its persistent structure — directory shape, per-depth segment
// histogram, fullness distribution, stash usage. Useful when debugging a
// deployment or studying how the table grew.
//
// Usage: ./inspect_tool --pool=/path [--table=dash-eh|dash-lh]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "dash/dash_eh.h"
#include "dash/dash_lh.h"
#include "pmem/pool.h"

using namespace dash;

namespace {

struct SegmentSummary {
  std::map<uint32_t, uint64_t> by_depth;
  std::vector<double> fullness;
  uint64_t records = 0;
  uint64_t stash_records = 0;
  uint64_t chain_nodes = 0;
  uint64_t segments = 0;

  void Add(Segment* seg) {
    ++segments;
    ++by_depth[seg->local_depth()];
    fullness.push_back(seg->Fullness());
    records += seg->RecordCount();
    for (uint32_t i = 0; i < seg->num_stash(); ++i) {
      stash_records += seg->stash_bucket(i)->count();
    }
    for (StashChainNode* node = seg->stash_chain(); node != nullptr;
         node = reinterpret_cast<StashChainNode*>(node->next)) {
      ++chain_nodes;
    }
  }

  void Print() const {
    std::printf("segments:        %lu\n",
                static_cast<unsigned long>(segments));
    std::printf("records:         %lu (%lu in stash, %lu chain nodes)\n",
                static_cast<unsigned long>(records),
                static_cast<unsigned long>(stash_records),
                static_cast<unsigned long>(chain_nodes));
    std::printf("depth histogram:\n");
    for (const auto& [depth, count] : by_depth) {
      std::printf("  local_depth %2u: %6lu segments\n", depth,
                  static_cast<unsigned long>(count));
    }
    if (!fullness.empty()) {
      std::vector<double> sorted = fullness;
      std::sort(sorted.begin(), sorted.end());
      const auto pct = [&](double p) {
        return sorted[static_cast<size_t>(p * (sorted.size() - 1))];
      };
      std::printf("fullness: min=%.3f p25=%.3f median=%.3f p75=%.3f "
                  "max=%.3f\n",
                  sorted.front(), pct(0.25), pct(0.5), pct(0.75),
                  sorted.back());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string kind = "dash-eh";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pool=", 7) == 0) path = argv[i] + 7;
    if (std::strncmp(argv[i], "--table=", 8) == 0) kind = argv[i] + 8;
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s --pool=/path [--table=dash-eh|dash-lh]\n",
                 argv[0]);
    return 1;
  }
  auto pool = pmem::PmPool::Open(path);
  if (pool == nullptr) {
    std::fprintf(stderr, "cannot open pool %s\n", path.c_str());
    return 1;
  }
  std::printf("pool: %s\n", path.c_str());
  std::printf("  size:          %lu MB\n",
              static_cast<unsigned long>(pool->header()->pool_size >> 20));
  std::printf("  base address:  %#lx\n",
              static_cast<unsigned long>(pool->header()->base_address));
  std::printf("  last shutdown: %s\n",
              pool->recovered_from_crash() ? "CRASH (recovery ran at open)"
                                           : "clean");
  std::printf("  heap in use:   %lu MB\n",
              static_cast<unsigned long>(pool->allocator().bytes_in_use() >>
                                         20));

  epoch::EpochManager epochs;
  DashOptions opts;
  SegmentSummary summary;
  if (kind == "dash-eh") {
    DashEH<> table(pool.get(), &epochs, opts);
    std::printf("table: dash-eh, global depth %lu (%lu directory entries)\n",
                static_cast<unsigned long>(table.global_depth()),
                static_cast<unsigned long>(1ull << table.global_depth()));
    table.ForEachSegment([&](Segment* seg) { summary.Add(seg); });
  } else if (kind == "dash-lh") {
    DashLH<> table(pool.get(), &epochs, opts);
    std::printf("table: dash-lh, round N=%u, Next=%u\n", table.rounds(),
                table.next_pointer());
    table.ForEachSegment([&](Segment* seg) { summary.Add(seg); });
  } else {
    std::fprintf(stderr, "inspect supports dash-eh and dash-lh\n");
    return 1;
  }
  summary.Print();
  // Inspection must not alter shutdown semantics: reopen left the table
  // marked dirty only if it already was.
  pool->CloseClean();
  return 0;
}
