// Async submission API walkthrough: submit/wait lifecycle, windowed
// (pipelined) submission, completion polling, and clean shutdown.
//
//   ./async_serving [pool_prefix]
//
// A 4-shard store is opened with its per-shard worker threads (the
// default); batches are scattered on this thread, executed on the
// workers, and the returned BatchFuture tells us when the caller-owned
// result arrays are safe to read.

#include <cstdio>
#include <string>
#include <vector>

#include "api/sharded_store.h"

using dash::api::BatchFuture;
using dash::api::Op;
using dash::api::Status;
using dash::api::StatusName;

int main(int argc, char** argv) {
  const std::string prefix =
      argc > 1 ? argv[1] : "/tmp/dash_async_serving_example";
  for (size_t i = 0; i < 4; ++i) {
    std::remove((prefix + ".shard" + std::to_string(i)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());

  dash::api::ShardedStoreOptions options;
  options.kind = dash::api::IndexKind::kDashEH;
  options.shards = 4;
  options.path_prefix = prefix;
  options.shard_pool_size = 256ull << 20;
  // options.async.workers      — per-shard worker threads (default true)
  // options.async.queue_depth  — bounded per-shard queue (default 128)
  // options.async.pin_workers  — pin worker i to core i (default false)
  auto store = dash::api::ShardedStore::Open(options);
  if (store == nullptr) {
    std::fprintf(stderr, "cannot open sharded store at %s\n",
                 prefix.c_str());
    return 1;
  }

  // 1. Submit one mixed batch and wait for its completion token. The ops
  //    and statuses arrays must stay alive (and result slots unread)
  //    until the future is ready.
  std::vector<Op> ops;
  for (uint64_t k = 1; k <= 8; ++k) ops.push_back(Op::Insert(k, k * 100));
  std::vector<Status> statuses(ops.size());
  BatchFuture future =
      store->SubmitExecute(ops.data(), ops.size(), statuses.data());
  future.Wait();
  std::printf("insert batch done: status[0]=%s pending=%u\n",
              StatusName(statuses[0]), future.pending_shards());

  // 2. Pipeline: keep a window of batches in flight. Batches submitted
  //    to the same shard run in submission order (per-shard FIFO);
  //    different shards run in parallel on their workers.
  constexpr size_t kWindow = 3;
  struct Slot {
    std::vector<Op> ops;
    std::vector<Status> statuses;
    BatchFuture future;
  };
  Slot window[kWindow];
  uint64_t next_key = 9;
  for (int round = 0; round < 9; ++round) {
    Slot& slot = window[round % kWindow];
    if (slot.future.valid()) slot.future.Wait();  // reap before reuse
    slot.ops.clear();
    for (int i = 0; i < 16; ++i) {
      slot.ops.push_back(Op::Insert(next_key, next_key * 100));
      ++next_key;
    }
    slot.statuses.resize(slot.ops.size());
    slot.future = store->SubmitExecute(slot.ops.data(), slot.ops.size(),
                                       slot.statuses.data());
  }
  for (Slot& slot : window) {
    if (slot.future.valid()) slot.future.Wait();
  }
  std::printf("pipelined %llu inserts across 4 shards\n",
              static_cast<unsigned long long>(next_key - 1));

  // 3. Homogeneous submission + poll instead of block.
  std::vector<uint64_t> keys, values(32);
  for (uint64_t k = 1; k <= 32; ++k) keys.push_back(k);
  std::vector<Status> search_status(keys.size());
  BatchFuture search = store->SubmitSearch(keys.data(), keys.size(),
                                           values.data(),
                                           search_status.data());
  while (!search.Ready()) {
    // ... a real frontend would do other work here ...
  }
  std::printf("search[7]: %s -> %llu\n", StatusName(search_status[7]),
              static_cast<unsigned long long>(values[7]));

  // 4. The synchronous Multi* calls are submit+wait wrappers over the
  //    same executor — existing callers need no changes.
  std::vector<uint64_t> more_values(keys.size());
  store->MultiSearch(keys.data(), keys.size(), more_values.data(),
                     search_status.data());

  const dash::api::ShardedStats stats = store->Stats();
  std::printf("records=%llu across %zu shards (lf %.3f..%.3f)\n",
              static_cast<unsigned long long>(stats.totals.records),
              stats.shard_count, stats.min_shard_load_factor,
              stats.max_shard_load_factor);

  // 5. Clean shutdown: drains queued batches, joins the workers, then
  //    closes the shards. Later submissions are rejected.
  store->CloseClean();
  BatchFuture rejected =
      store->SubmitExecute(ops.data(), ops.size(), statuses.data());
  std::printf("submit after close: %s\n",
              StatusName(rejected.submit_status()));
  return 0;
}
