// Instant-recovery demonstration (paper §4.8, Table 1, Fig. 14).
//
// Loads a table, simulates a power failure (no clean-shutdown marker),
// reopens it and measures (1) the time until the table can serve its first
// request — constant, regardless of data size — and (2) how throughput
// ramps up while lazy recovery touches segments on demand.
//
// Run:  ./recovery_demo [records]

#include <chrono>
#include <cstdio>
#include <string>

#include "api/kv_index.h"
#include "pmem/pool.h"
#include "util/rand.h"

using namespace dash;
using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
  const uint64_t records = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : 1'000'000;
  const std::string path = "/tmp/dash_recovery_demo.pool";
  std::remove(path.c_str());

  // Session 1: load, then "crash".
  {
    pmem::PmPool::Options options;
    options.pool_size = 2ull << 30;
    auto pool = pmem::PmPool::Create(path, options);
    if (pool == nullptr) return 1;
    epoch::EpochManager epochs;
    DashOptions opts;
    auto table =
        api::CreateKvIndex(api::IndexKind::kDashEH, pool.get(), &epochs, opts);
    for (uint64_t k = 1; k <= records; ++k) table->Insert(k, k);
    std::printf("loaded %lu records, simulating power failure...\n",
                static_cast<unsigned long>(records));
    epochs.DiscardAll();
    table.reset();
    pool->CloseDirty();  // no clean marker — like pulling the plug
  }

  // Session 2: instant recovery.
  {
    const auto open_start = Clock::now();
    auto pool = pmem::PmPool::Open(path);
    if (pool == nullptr) return 1;
    epoch::EpochManager epochs;
    DashOptions opts;
    auto table =
        api::CreateKvIndex(api::IndexKind::kDashEH, pool.get(), &epochs, opts);
    uint64_t value = 0;
    table->Search(1, &value);  // first request
    const double ready_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - open_start)
            .count();
    std::printf("crash-recovered and served first request in %.2f ms "
                "(constant in data size)\n", ready_ms);

    // Throughput ramp while lazy recovery sweeps segments.
    util::Xoshiro256 rng(1);
    for (int window = 0; window < 8; ++window) {
      const auto start = Clock::now();
      uint64_t ops = 0;
      while (Clock::now() - start < std::chrono::milliseconds(100)) {
        for (int i = 0; i < 512; ++i) {
          table->Search(rng.NextBounded(records) + 1, &value);
        }
        ops += 512;
      }
      std::printf("  t=%3d ms..%3d ms: %7.2f Mops/s\n", window * 100,
                  (window + 1) * 100, static_cast<double>(ops) / 0.1 / 1e6);
    }

    // Verify nothing was lost.
    uint64_t missing = 0;
    for (uint64_t k = 1; k <= records; ++k) {
      if (!api::IsOk(table->Search(k, &value))) ++missing;
    }
    std::printf("verification: %lu/%lu records intact (%s)\n",
                static_cast<unsigned long>(records - missing),
                static_cast<unsigned long>(records),
                missing == 0 ? "OK" : "DATA LOSS");
    table->CloseClean();
    pool->CloseClean();
  }
  std::remove(path.c_str());
  return 0;
}
