// Batch API walkthrough: insert, look up and delete keys in batches via
// MultiInsert / MultiSearch / MultiDelete. The batch entry points are
// semantically identical to looping the single-op calls, but run each
// group of operations through a software-prefetching pipeline and amortize
// one epoch guard over the whole batch — the natural shape for serving
// request batches from many concurrent users.
//
// Run:  ./batch_ops [pool-path] [table-kind]
// where table-kind is one of: dash-eh (default), dash-lh, cceh, level.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/kv_index.h"
#include "pmem/pool.h"

using namespace dash;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/dash_batch_ops.pool";
  api::IndexKind kind = api::IndexKind::kDashEH;
  if (argc > 2 && !api::ParseIndexKind(argv[2], &kind)) {
    std::fprintf(stderr, "unknown table kind '%s'\n", argv[2]);
    return 1;
  }

  std::remove(path.c_str());
  pmem::PmPool::Options options;
  options.pool_size = 256ull << 20;
  auto pool = pmem::PmPool::Create(path, options);
  if (pool == nullptr) {
    std::fprintf(stderr, "failed to create pool at %s\n", path.c_str());
    return 1;
  }
  epoch::EpochManager epochs;
  DashOptions opts;
  auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);

  // A "request batch" as a server would collect it from the network.
  constexpr size_t kBatch = 16;
  constexpr uint64_t kTotal = 1'000'000;

  uint64_t keys[kBatch];
  uint64_t values[kBatch];
  api::Status ok[kBatch];

  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t base = 0; base < kTotal; base += kBatch) {
    for (size_t i = 0; i < kBatch; ++i) {
      keys[i] = base + i + 1;
      values[i] = (base + i) * 2;
    }
    table->MultiInsert(keys, values, kBatch, ok);
  }
  const auto t1 = std::chrono::steady_clock::now();

  uint64_t hits = 0;
  for (uint64_t base = 0; base < kTotal; base += kBatch) {
    for (size_t i = 0; i < kBatch; ++i) {
      // Scramble so the lookups are not sequential.
      keys[i] = (base + i) * 2654435761u % kTotal + 1;
    }
    table->MultiSearch(keys, kBatch, values, ok);
    for (size_t i = 0; i < kBatch; ++i) hits += api::IsOk(ok[i]);
  }
  const auto t2 = std::chrono::steady_clock::now();

  const auto ms = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(b - a)
        .count();
  };
  std::printf("table=%s inserted=%lu in %ld ms, searched=%lu (hits=%lu) in %ld ms\n",
              api::IndexKindName(table->kind()),
              static_cast<unsigned long>(kTotal), static_cast<long>(ms(t0, t1)),
              static_cast<unsigned long>(kTotal),
              static_cast<unsigned long>(hits), static_cast<long>(ms(t1, t2)));
  std::printf("load factor: %.2f\n", table->Stats().load_factor);

  table->CloseClean();
  pool->CloseClean();
  std::remove(path.c_str());
  return 0;
}
