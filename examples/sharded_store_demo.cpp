// ShardedStore demo: a 4-shard Dash-EH store serving a mixed-op
// descriptor batch through MultiExecute — the serving-path configuration
// of API v2. Each shard owns its own pool and epoch manager; the store
// scatters a batch per shard, runs every sub-batch through that shard's
// prefetch pipeline, and gathers results in caller order.

#include <cstdio>
#include <string>

#include "api/sharded_store.h"

using namespace dash;

int main() {
  api::ShardedStoreOptions options;
  options.kind = api::IndexKind::kDashEH;
  options.shards = 4;
  options.path_prefix = "/tmp/dash_sharded_demo";
  options.shard_pool_size = 256ull << 20;

  auto store = api::ShardedStore::Open(options);
  if (store == nullptr) {
    std::fprintf(stderr, "cannot open sharded store\n");
    return 1;
  }

  // Load a few records through the single-op facade.
  for (uint64_t k = 1; k <= 10000; ++k) {
    store->Insert(k, k * 10);
  }

  // One heterogeneous batch: reads, an update, an insert, a delete, and a
  // deliberate error (reserved key 0).
  api::Op ops[] = {
      api::Op::Search(1),        api::Op::Search(9999),
      api::Op::Update(2, 222),   api::Op::Insert(10001, 42),
      api::Op::Delete(3),        api::Op::Search(0),
  };
  constexpr size_t kN = sizeof(ops) / sizeof(ops[0]);
  api::Status statuses[kN];
  store->MultiExecute(ops, kN, statuses);

  for (size_t i = 0; i < kN; ++i) {
    std::printf("%-6s key=%-6lu -> %-16s", api::OpTypeName(ops[i].type),
                static_cast<unsigned long>(ops[i].key),
                api::StatusName(statuses[i]));
    if (ops[i].type == api::OpType::kSearch && api::IsOk(statuses[i])) {
      std::printf(" value=%lu", static_cast<unsigned long>(ops[i].value));
    }
    std::printf("\n");
  }

  const api::ShardedStats stats = store->Stats();
  std::printf(
      "shards=%lu records=%lu bytes_used=%lu load_factor=%.2f "
      "(per-shard %.2f..%.2f)\n",
      static_cast<unsigned long>(stats.shard_count),
      static_cast<unsigned long>(stats.totals.records),
      static_cast<unsigned long>(stats.totals.bytes_used),
      stats.totals.load_factor, stats.min_shard_load_factor,
      stats.max_shard_load_factor);

  store->CloseClean();
  for (size_t i = 0; i < options.shards; ++i) {
    std::remove((options.path_prefix + ".shard" + std::to_string(i)).c_str());
  }
  std::remove((options.path_prefix + ".manifest").c_str());
  return 0;
}
