// Quickstart: create a persistent pool, open a Dash-EH table in it, do a
// few operations, close cleanly, reopen and observe the data is still
// there. Run:  ./quickstart [pool-path]

#include <cstdio>
#include <string>

#include "api/kv_index.h"
#include "pmem/pool.h"

using namespace dash;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/dash_quickstart.pool";

  // --- first session: create and populate ---
  {
    std::remove(path.c_str());
    pmem::PmPool::Options options;
    options.pool_size = 64ull << 20;  // 64 MB
    auto pool = pmem::PmPool::Create(path, options);
    if (pool == nullptr) {
      std::fprintf(stderr, "failed to create pool at %s\n", path.c_str());
      return 1;
    }

    epoch::EpochManager epochs;
    DashOptions opts;  // paper defaults: 16 KB segments, 2 stash buckets
    auto table =
        api::CreateKvIndex(api::IndexKind::kDashEH, pool.get(), &epochs, opts);

    for (uint64_t k = 1; k <= 100000; ++k) {
      table->Insert(k, k * k);
    }
    uint64_t value = 0;
    table->Search(217, &value);
    std::printf("session 1: inserted 100k records; table[217] = %lu\n",
                static_cast<unsigned long>(value));
    std::printf("session 1: load factor = %.2f\n",
                table->Stats().load_factor);

    table->CloseClean();
    pool->CloseClean();
  }

  // --- second session: reopen, everything persisted ---
  {
    auto pool = pmem::PmPool::Open(path);
    if (pool == nullptr) {
      std::fprintf(stderr, "failed to reopen pool\n");
      return 1;
    }
    epoch::EpochManager epochs;
    DashOptions opts;
    auto table =
        api::CreateKvIndex(api::IndexKind::kDashEH, pool.get(), &epochs, opts);

    uint64_t value = 0;
    const bool found = api::IsOk(table->Search(217, &value));
    std::printf("session 2: reopened; table[217] %s= %lu (records: %lu)\n",
                found ? "" : "NOT FOUND ",
                static_cast<unsigned long>(value),
                static_cast<unsigned long>(table->Stats().records));

    table->Delete(217);
    std::printf("session 2: deleted key 217; search now %s\n",
                api::IsOk(table->Search(217, &value)) ? "hits" : "misses");

    table->CloseClean();
    pool->CloseClean();
  }
  std::remove(path.c_str());
  std::printf("quickstart OK\n");
  return 0;
}
