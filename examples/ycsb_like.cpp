// YCSB-style workload runner over the unified index API — the kind of
// key-value cache workload the paper's introduction motivates. Supports
// uniform and Zipfian key distributions (the paper also examined skewed
// runs, §6.2) and the classic workload mixes:
//   A = 50% read / 50% update    B = 95% read / 5% update
//   C = 100% read                D-ish = 95% read / 5% insert
//
// Usage: ./ycsb_like [--table=dash-eh] [--workload=A|B|C|D]
//                    [--records=1000000] [--ops=2000000] [--threads=4]
//                    [--zipf=0.99 | --uniform]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/kv_index.h"
#include "pmem/pool.h"
#include "util/rand.h"
#include "util/zipf.h"

using namespace dash;

namespace {

struct Config {
  std::string table = "dash-eh";
  char workload = 'B';
  uint64_t records = 1'000'000;
  uint64_t ops = 2'000'000;
  int threads = 4;
  double zipf_theta = 0.99;
  bool uniform = false;
};

Config Parse(int argc, char** argv) {
  Config c;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--table=", 8) == 0) c.table = a + 8;
    else if (std::strncmp(a, "--workload=", 11) == 0) c.workload = a[11];
    else if (std::strncmp(a, "--records=", 10) == 0) c.records = std::strtoull(a + 10, nullptr, 10);
    else if (std::strncmp(a, "--ops=", 6) == 0) c.ops = std::strtoull(a + 6, nullptr, 10);
    else if (std::strncmp(a, "--threads=", 10) == 0) c.threads = std::atoi(a + 10);
    else if (std::strncmp(a, "--zipf=", 7) == 0) c.zipf_theta = std::strtod(a + 7, nullptr);
    else if (std::strcmp(a, "--uniform") == 0) c.uniform = true;
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = Parse(argc, argv);
  api::IndexKind kind;
  if (!api::ParseIndexKind(config.table, &kind)) {
    std::fprintf(stderr, "unknown table %s\n", config.table.c_str());
    return 1;
  }
  int read_pct;
  bool insert_for_writes = false;
  switch (config.workload) {
    case 'A': read_pct = 50; break;
    case 'B': read_pct = 95; break;
    case 'C': read_pct = 100; break;
    case 'D': read_pct = 95; insert_for_writes = true; break;
    default:
      std::fprintf(stderr, "workload must be A, B, C or D\n");
      return 1;
  }

  const std::string path = "/tmp/dash_ycsb.pool";
  std::remove(path.c_str());
  pmem::PmPool::Options options;
  options.pool_size = 4ull << 30;
  auto pool = pmem::PmPool::Create(path, options);
  if (pool == nullptr) return 1;
  epoch::EpochManager epochs;
  DashOptions opts;
  auto table = api::CreateKvIndex(kind, pool.get(), &epochs, opts);

  std::printf("loading %lu records into %s...\n",
              static_cast<unsigned long>(config.records),
              config.table.c_str());
  {
    std::vector<std::thread> loaders;
    const uint64_t per = config.records / config.threads;
    for (int t = 0; t < config.threads; ++t) {
      loaders.emplace_back([&, t] {
        const uint64_t begin = t * per + 1;
        const uint64_t end =
            t == config.threads - 1 ? config.records : (t + 1) * per;
        for (uint64_t k = begin; k <= end; ++k) table->Insert(k, k);
      });
    }
    for (auto& l : loaders) l.join();
  }

  std::printf("running workload %c (%d%% reads, %s keys) with %d threads\n",
              config.workload, read_pct,
              config.uniform ? "uniform" : "zipfian", config.threads);
  std::atomic<uint64_t> reads{0}, writes{0}, misses{0};
  std::atomic<uint64_t> insert_cursor{config.records};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  const uint64_t ops_per = config.ops / config.threads;
  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 7);
      util::ZipfGenerator zipf(config.records, config.zipf_theta,
                               t * 31 + 11);
      uint64_t local_reads = 0, local_writes = 0, local_misses = 0;
      for (uint64_t i = 0; i < ops_per; ++i) {
        const uint64_t key =
            config.uniform ? rng.NextBounded(config.records) + 1
                           : zipf.Next() + 1;
        if (static_cast<int>(rng.NextBounded(100)) < read_pct) {
          uint64_t value;
          if (!api::IsOk(table->Search(key, &value))) ++local_misses;
          ++local_reads;
        } else if (insert_for_writes) {
          table->Insert(insert_cursor.fetch_add(1) + 1, i);
          ++local_writes;
        } else {
          // In-place update of the opaque 8-byte payload (§4.1).
          table->Update(key, i);
          ++local_writes;
        }
      }
      reads += local_reads;
      writes += local_writes;
      misses += local_misses;
    });
  }
  for (auto& w : workers) w.join();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  std::printf("throughput: %.2f Mops/s (%lu reads, %lu writes, %lu misses) "
              "load_factor=%.3f\n",
              static_cast<double>(config.ops) / secs / 1e6,
              static_cast<unsigned long>(reads.load()),
              static_cast<unsigned long>(writes.load()),
              static_cast<unsigned long>(misses.load()),
              table->Stats().load_factor);
  table->CloseClean();
  pool->CloseClean();
  std::remove(path.c_str());
  return 0;
}
