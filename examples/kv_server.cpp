// Standalone KvServer: serves a ShardedStore over a Unix-domain socket
// and/or loopback TCP until SIGINT/SIGTERM.
//
//   ./kv_server [pool_prefix] [uds_path] [tcp_port]
//
// Defaults: /tmp/dash_kv_server_example, <prefix>.sock, no TCP. Pass a
// tcp_port (0 picks an ephemeral one, printed on startup) to also listen
// on 127.0.0.1. Drive it with bench_serving --connect-style tooling or a
// KvClient:
//
//   dash::net::KvClient client;
//   client.ConnectUds("/tmp/dash_kv_server_example.sock");
//   const auto op = dash::api::Op::Insert(1, 100);
//   dash::net::ClientResponse response;
//   client.Execute(&op, 1, /*deadline_us=*/0, &response);

#include <csignal>
#include <cstdlib>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "net/kv_server.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  const std::string prefix =
      argc > 1 ? argv[1] : "/tmp/dash_kv_server_example";
  const std::string uds_path = argc > 2 ? argv[2] : prefix + ".sock";
  const bool tcp = argc > 3;

  dash::api::ShardedStoreOptions options;
  options.kind = dash::api::IndexKind::kDashEH;
  options.shards = 4;
  options.path_prefix = prefix;
  options.shard_pool_size = 256ull << 20;
  // Bounded submit backoff: saturation surfaces as kUnavailable +
  // retry-after responses instead of blocking the server's event loop.
  options.async.submit_retries = 8;
  options.async.inline_single_shard = false;
  auto store = dash::api::ShardedStore::Open(options);
  if (store == nullptr) {
    std::fprintf(stderr, "cannot open sharded store at %s\n",
                 prefix.c_str());
    return 1;
  }

  dash::net::ServerOptions server_options;
  server_options.uds_path = uds_path;
  if (tcp) {
    server_options.tcp = true;
    server_options.tcp_port =
        static_cast<uint16_t>(std::atoi(argv[3]));
  }
  dash::net::KvServer server(store.get(), server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("kv_server: uds=%s", uds_path.c_str());
  if (tcp) std::printf(" tcp=127.0.0.1:%u", server.tcp_port());
  std::printf(" shards=%zu\n", store->shard_count());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (g_stop == 0) {
    ::usleep(100 * 1000);
  }

  server.Stop();
  const dash::net::ServerStats stats = server.stats();
  std::printf(
      "kv_server: served %llu requests (%llu ops, %llu retry-after, "
      "%llu bad frames) over %llu connections\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.ops),
      static_cast<unsigned long long>(stats.retry_responses),
      static_cast<unsigned long long>(stats.frames_bad),
      static_cast<unsigned long long>(stats.connections_accepted));
  store->CloseClean();
  return 0;
}
