// A tiny persistent key-value store CLI over Dash (variable-length keys,
// §4.5). State survives across invocations through the PM pool.
//
// Usage:
//   ./kv_store_cli [--pool=/path] [--table=dash-eh|dash-lh|cceh|level]
//   > put <key> <number>      (insert; EXISTS if present)
//   > upsert <key> <number>   (insert-or-update)
//   > get <key>
//   > del <key>
//   > stats
//   > quit
//
// Ported to API v2: every operation prints its Status name, so the shell
// surfaces EXISTS / NOT_FOUND / INVALID_ARGUMENT (e.g. an empty key)
// exactly as the store reports them.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "api/kv_index.h"
#include "pmem/pool.h"

using namespace dash;

int main(int argc, char** argv) {
  std::string path = "/tmp/dash_kv_store.pool";
  api::IndexKind kind = api::IndexKind::kDashEH;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pool=", 7) == 0) {
      path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--table=", 8) == 0) {
      if (!api::ParseIndexKind(argv[i] + 8, &kind)) {
        std::fprintf(stderr, "unknown table kind %s\n", argv[i] + 8);
        return 1;
      }
    }
  }

  pmem::PmPool::Options options;
  options.pool_size = 256ull << 20;
  bool created = false;
  auto pool = pmem::PmPool::OpenOrCreate(path, options, &created);
  if (pool == nullptr) {
    std::fprintf(stderr, "cannot open pool %s\n", path.c_str());
    return 1;
  }
  epoch::EpochManager epochs;
  DashOptions opts;
  auto table = api::CreateVarKvIndex(kind, pool.get(), &epochs, opts);
  std::printf("%s pool %s (table: %s, %lu records)\n",
              created ? "created" : "opened", path.c_str(),
              api::IndexKindName(kind),
              static_cast<unsigned long>(table->Stats().records));
  if (pool->recovered_from_crash()) {
    std::printf("note: previous session did not shut down cleanly; "
                "recovery ran instantly at open\n");
  }

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd, key;
    in >> cmd;
    if (cmd == "put") {
      uint64_t value;
      if (in >> key >> value) {
        std::printf("%s\n", api::StatusName(table->Insert(key, value)));
      } else {
        std::printf("usage: put <key> <number>\n");
      }
    } else if (cmd == "upsert") {
      uint64_t value;
      if (in >> key >> value) {
        api::Status status = table->Insert(key, value);
        if (status == api::Status::kExists) status = table->Update(key, value);
        std::printf("%s\n", api::StatusName(status));
      } else {
        std::printf("usage: upsert <key> <number>\n");
      }
    } else if (cmd == "get") {
      uint64_t value;
      if (in >> key) {
        const api::Status status = table->Search(key, &value);
        if (api::IsOk(status)) {
          std::printf("%lu\n", static_cast<unsigned long>(value));
        } else {
          std::printf("%s\n", api::StatusName(status));
        }
      }
    } else if (cmd == "del") {
      if (in >> key) {
        std::printf("%s\n", api::StatusName(table->Delete(key)));
      }
    } else if (cmd == "stats") {
      const api::IndexStats stats = table->Stats();
      std::printf(
          "records=%lu capacity=%lu load_factor=%.3f bytes_used=%lu\n",
          static_cast<unsigned long>(stats.records),
          static_cast<unsigned long>(stats.capacity_slots),
          stats.load_factor, static_cast<unsigned long>(stats.bytes_used));
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (!cmd.empty()) {
      std::printf("commands: put upsert get del stats quit\n");
    }
  }
  table->CloseClean();
  pool->CloseClean();
  std::printf("closed cleanly\n");
  return 0;
}
