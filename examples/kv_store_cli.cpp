// A tiny persistent key-value store CLI over Dash (variable-length keys,
// §4.5). State survives across invocations through the PM pool.
//
// Usage:
//   ./kv_store_cli [--pool=/path] [--table=dash-eh|dash-lh|cceh|level]
//   > put <key> <number>
//   > get <key>
//   > del <key>
//   > stats
//   > quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "api/kv_index.h"
#include "pmem/pool.h"

using namespace dash;

int main(int argc, char** argv) {
  std::string path = "/tmp/dash_kv_store.pool";
  api::IndexKind kind = api::IndexKind::kDashEH;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pool=", 7) == 0) {
      path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--table=", 8) == 0) {
      if (!api::ParseIndexKind(argv[i] + 8, &kind)) {
        std::fprintf(stderr, "unknown table kind %s\n", argv[i] + 8);
        return 1;
      }
    }
  }

  pmem::PmPool::Options options;
  options.pool_size = 256ull << 20;
  bool created = false;
  auto pool = pmem::PmPool::OpenOrCreate(path, options, &created);
  if (pool == nullptr) {
    std::fprintf(stderr, "cannot open pool %s\n", path.c_str());
    return 1;
  }
  epoch::EpochManager epochs;
  DashOptions opts;
  auto table = api::CreateVarKvIndex(kind, pool.get(), &epochs, opts);
  std::printf("%s pool %s (table: %s, %lu records)\n",
              created ? "created" : "opened", path.c_str(),
              api::IndexKindName(kind),
              static_cast<unsigned long>(table->Stats().records));
  if (pool->recovered_from_crash()) {
    std::printf("note: previous session did not shut down cleanly; "
                "recovery ran instantly at open\n");
  }

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd, key;
    in >> cmd;
    if (cmd == "put") {
      uint64_t value;
      if (in >> key >> value) {
        std::printf(table->Insert(key, value) ? "OK\n" : "EXISTS\n");
      } else {
        std::printf("usage: put <key> <number>\n");
      }
    } else if (cmd == "get") {
      uint64_t value;
      if (in >> key) {
        if (table->Search(key, &value)) {
          std::printf("%lu\n", static_cast<unsigned long>(value));
        } else {
          std::printf("NOT FOUND\n");
        }
      }
    } else if (cmd == "del") {
      if (in >> key) {
        std::printf(table->Delete(key) ? "OK\n" : "NOT FOUND\n");
      }
    } else if (cmd == "stats") {
      const api::IndexStats stats = table->Stats();
      std::printf("records=%lu capacity=%lu load_factor=%.3f\n",
                  static_cast<unsigned long>(stats.records),
                  static_cast<unsigned long>(stats.capacity_slots),
                  stats.load_factor);
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (!cmd.empty()) {
      std::printf("commands: put get del stats quit\n");
    }
  }
  table->CloseClean();
  pool->CloseClean();
  std::printf("closed cleanly\n");
  return 0;
}
